//! Shared fixtures for the benchmark harness.
//!
//! Benches and the `figures` binary both need a generated study; building
//! one per measurement would swamp the timings, so fixtures are cached in
//! process-wide `OnceLock`s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;

use mobilenet_core::study::Study;
use mobilenet_core::{Pipeline, Scale, DEFAULT_SEED};

/// The benchmark seed: fixed so numbers are comparable across runs
/// (the measurement week's start date, like [`DEFAULT_SEED`]).
pub const SEED: u64 = DEFAULT_SEED;

/// A small (1,000-commune) measured study, built once.
pub fn small_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| {
        Pipeline::builder()
            .scale(Scale::Small)
            .seed(SEED)
            .run()
            .expect("small fixture")
            .into_study()
    })
}

/// A medium (6,000-commune) measured study, built once. This is the scale
/// the shipped figures use.
pub fn medium_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| {
        Pipeline::builder()
            .scale(Scale::Medium)
            .seed(SEED)
            .run()
            .expect("medium fixture")
            .into_study()
    })
}

/// Per-stage timings read back from a `BENCH_*.json` baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct StageBaseline {
    /// Stage span name, e.g. `"kshape_sweep"`.
    pub stage: String,
    /// Single-thread wall-clock seconds.
    pub serial_s: f64,
    /// Multi-thread wall-clock seconds.
    pub parallel_s: f64,
}

/// A per-stage regression found by [`compare_stages`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Stage that regressed.
    pub stage: String,
    /// Baseline serial seconds.
    pub baseline_s: f64,
    /// Current serial seconds.
    pub current_s: f64,
}

/// Relative slowdown (fraction of baseline) above which a stage counts as
/// regressed. 25% rides comfortably above shared-runner timing noise for
/// stages long enough to clear [`COMPARE_MIN_DELTA_S`].
pub const COMPARE_MAX_RELATIVE_SLOWDOWN: f64 = 0.25;

/// Absolute slowdown floor: stages that regress by less than this many
/// seconds never fail the gate, so microsecond-scale stages (where 25%
/// is pure jitter) cannot flake the build.
pub const COMPARE_MIN_DELTA_S: f64 = 0.05;

/// Extracts the first string value of `key` inside `obj`.
fn json_str(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let rest = &obj[obj.find(&pat)? + pat.len()..];
    let rest = &rest[rest.find(':')? + 1..];
    let rest = &rest[rest.find('"')? + 1..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts the first numeric value of `key` inside `obj`.
fn json_num(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let rest = &obj[obj.find(&pat)? + pat.len()..];
    let rest = rest[rest.find(':')? + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the `"stages"` array out of a `BENCH_*.json` file written by
/// `bench_baseline`. Hand-rolled (the workspace has no serde): the writer
/// emits one `{ ... }` object per line inside the array, and this reader
/// accepts any formatting where stage objects don't nest.
pub fn parse_stage_baselines(json: &str) -> Result<Vec<StageBaseline>, String> {
    let start = json.find("\"stages\"").ok_or("no \"stages\" key in baseline file")?;
    let rest = &json[start..];
    let open = rest.find('[').ok_or("no stages array")?;
    let close = rest[open..].find(']').ok_or("unterminated stages array")? + open;
    let body = &rest[open + 1..close];

    let mut stages = Vec::new();
    let mut cursor = body;
    while let Some(obj_start) = cursor.find('{') {
        let obj_end = cursor[obj_start..]
            .find('}')
            .ok_or("unterminated stage object")?
            + obj_start;
        let obj = &cursor[obj_start..=obj_end];
        stages.push(StageBaseline {
            stage: json_str(obj, "stage").ok_or("stage object missing \"stage\"")?,
            serial_s: json_num(obj, "serial_s").ok_or("stage object missing \"serial_s\"")?,
            parallel_s: json_num(obj, "parallel_s")
                .ok_or("stage object missing \"parallel_s\"")?,
        });
        cursor = &cursor[obj_end + 1..];
    }
    if stages.is_empty() {
        return Err("stages array is empty".into());
    }
    Ok(stages)
}

/// Compares current per-stage serial timings against a baseline and
/// returns the stages that regressed: slower by more than
/// [`COMPARE_MAX_RELATIVE_SLOWDOWN`] relative AND [`COMPARE_MIN_DELTA_S`]
/// absolute. Stages present on only one side are ignored (renames and new
/// stages don't fail the gate; the baseline should be refreshed instead).
pub fn compare_stages(
    baseline: &[StageBaseline],
    current: &[(String, f64)],
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for base in baseline {
        let Some((_, cur)) = current.iter().find(|(name, _)| *name == base.stage) else {
            continue;
        };
        let delta = cur - base.serial_s;
        if delta > COMPARE_MIN_DELTA_S
            && delta > COMPARE_MAX_RELATIVE_SLOWDOWN * base.serial_s
        {
            regressions.push(Regression {
                stage: base.stage.clone(),
                baseline_s: base.serial_s,
                current_s: *cur,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_study_is_cached() {
        let a = small_study() as *const Study;
        let b = small_study() as *const Study;
        assert_eq!(a, b);
    }

    const SAMPLE: &str = r#"{
  "schema": "mobilenet-bench-baseline/v1",
  "stages": [
    { "stage": "generation", "serial_s": 0.3095, "parallel_s": 0.1536, "speedup": 2.01 },
    { "stage": "kshape_sweep", "serial_s": 2.1086, "parallel_s": 2.1826, "speedup": 0.97 },
    { "stage": "peaks", "serial_s": 0.0001, "parallel_s": 0.0005, "speedup": 0.24 }
  ],
  "total_serial_s": 3.7938
}"#;

    #[test]
    fn parses_stage_array() {
        let stages = parse_stage_baselines(SAMPLE).unwrap();
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[0].stage, "generation");
        assert_eq!(stages[0].serial_s, 0.3095);
        assert_eq!(stages[1].stage, "kshape_sweep");
        assert_eq!(stages[1].parallel_s, 2.1826);
    }

    #[test]
    fn rejects_files_without_stages() {
        assert!(parse_stage_baselines("{}").is_err());
        assert!(parse_stage_baselines("{\"stages\": []}").is_err());
    }

    #[test]
    fn flags_only_real_regressions() {
        let baseline = parse_stage_baselines(SAMPLE).unwrap();
        let current = vec![
            // 50% slower and > 50 ms: regression.
            ("generation".to_string(), 0.47),
            // Faster: fine.
            ("kshape_sweep".to_string(), 0.40),
            // 400% slower but sub-millisecond: ignored (absolute floor).
            ("peaks".to_string(), 0.0005),
        ];
        let regs = compare_stages(&baseline, &current);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].stage, "generation");
    }

    #[test]
    fn within_tolerance_is_clean() {
        let baseline = parse_stage_baselines(SAMPLE).unwrap();
        let current = vec![
            ("generation".to_string(), 0.33),
            ("kshape_sweep".to_string(), 2.2),
            ("missing_stage_is_ignored".to_string(), 99.0),
        ];
        assert!(compare_stages(&baseline, &current).is_empty());
    }
}
