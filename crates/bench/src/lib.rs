//! Shared fixtures for the benchmark harness.
//!
//! Benches and the `figures` binary both need a generated study; building
//! one per measurement would swamp the timings, so fixtures are cached in
//! process-wide `OnceLock`s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;

use mobilenet_core::study::Study;
use mobilenet_core::{Pipeline, Scale, DEFAULT_SEED};

/// The benchmark seed: fixed so numbers are comparable across runs
/// (the measurement week's start date, like [`DEFAULT_SEED`]).
pub const SEED: u64 = DEFAULT_SEED;

/// A small (1,000-commune) measured study, built once.
pub fn small_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| {
        Pipeline::builder()
            .scale(Scale::Small)
            .seed(SEED)
            .run()
            .expect("small fixture")
            .into_study()
    })
}

/// A medium (6,000-commune) measured study, built once. This is the scale
/// the shipped figures use.
pub fn medium_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| {
        Pipeline::builder()
            .scale(Scale::Medium)
            .seed(SEED)
            .run()
            .expect("medium fixture")
            .into_study()
    })
}

/// Per-stage timings read back from a `BENCH_*.json` baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct StageBaseline {
    /// Stage span name, e.g. `"kshape_sweep"`.
    pub stage: String,
    /// Single-thread wall-clock seconds.
    pub serial_s: f64,
    /// Multi-thread wall-clock seconds.
    pub parallel_s: f64,
}

/// A per-stage regression found by [`compare_stages`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Stage that regressed.
    pub stage: String,
    /// Baseline serial seconds.
    pub baseline_s: f64,
    /// Current serial seconds.
    pub current_s: f64,
}

/// Ingestion throughput read back from a `BENCH_*.json` baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestBaseline {
    /// Ingestion mode, e.g. `"streaming"` or `"replay_batched"`.
    pub mode: String,
    /// Records aggregated per second.
    pub records_per_s: f64,
}

/// An ingestion-throughput regression found by [`compare_ingest`].
#[derive(Debug, Clone, PartialEq)]
pub struct IngestRegression {
    /// Ingestion mode that regressed.
    pub mode: String,
    /// Baseline records per second.
    pub baseline_rps: f64,
    /// Current records per second.
    pub current_rps: f64,
}

/// Relative slowdown (fraction of baseline) above which a stage counts as
/// regressed. 25% rides comfortably above shared-runner timing noise for
/// stages long enough to clear [`COMPARE_MIN_DELTA_S`].
pub const COMPARE_MAX_RELATIVE_SLOWDOWN: f64 = 0.25;

/// Absolute slowdown floor: stages that regress by less than this many
/// seconds never fail the gate, so microsecond-scale stages (where 25%
/// is pure jitter) cannot flake the build.
pub const COMPARE_MIN_DELTA_S: f64 = 0.05;

/// Extracts the first string value of `key` inside `obj`.
fn json_str(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let rest = &obj[obj.find(&pat)? + pat.len()..];
    let rest = &rest[rest.find(':')? + 1..];
    let rest = &rest[rest.find('"')? + 1..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts the first numeric value of `key` inside `obj`.
fn json_num(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let rest = &obj[obj.find(&pat)? + pat.len()..];
    let rest = rest[rest.find(':')? + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the `"stages"` array out of a `BENCH_*.json` file written by
/// `bench_baseline`. Hand-rolled (the workspace has no serde): the writer
/// emits one `{ ... }` object per line inside the array, and this reader
/// accepts any formatting where stage objects don't nest.
pub fn parse_stage_baselines(json: &str) -> Result<Vec<StageBaseline>, String> {
    let start = json.find("\"stages\"").ok_or("no \"stages\" key in baseline file")?;
    let rest = &json[start..];
    let open = rest.find('[').ok_or("no stages array")?;
    let close = rest[open..].find(']').ok_or("unterminated stages array")? + open;
    let body = &rest[open + 1..close];

    let mut stages = Vec::new();
    let mut cursor = body;
    while let Some(obj_start) = cursor.find('{') {
        let obj_end = cursor[obj_start..]
            .find('}')
            .ok_or("unterminated stage object")?
            + obj_start;
        let obj = &cursor[obj_start..=obj_end];
        stages.push(StageBaseline {
            stage: json_str(obj, "stage").ok_or("stage object missing \"stage\"")?,
            serial_s: json_num(obj, "serial_s").ok_or("stage object missing \"serial_s\"")?,
            parallel_s: json_num(obj, "parallel_s")
                .ok_or("stage object missing \"parallel_s\"")?,
        });
        cursor = &cursor[obj_end + 1..];
    }
    if stages.is_empty() {
        return Err("stages array is empty".into());
    }
    Ok(stages)
}

/// Parses the `"ingest"` array out of a `BENCH_*.json` file written by
/// `bench_baseline` — one `{ "mode": …, "records_per_s": … }` object per
/// measured ingestion mode. Same hand-rolled grammar as
/// [`parse_stage_baselines`]. Files predating the ingest section parse as
/// an empty list (old baselines simply don't gate throughput).
pub fn parse_ingest_baselines(json: &str) -> Result<Vec<IngestBaseline>, String> {
    let Some(start) = json.find("\"ingest\"") else {
        return Ok(Vec::new());
    };
    let rest = &json[start..];
    let open = rest.find('[').ok_or("no ingest array")?;
    let close = rest[open..].find(']').ok_or("unterminated ingest array")? + open;
    let body = &rest[open + 1..close];

    let mut modes = Vec::new();
    let mut cursor = body;
    while let Some(obj_start) = cursor.find('{') {
        let obj_end = cursor[obj_start..]
            .find('}')
            .ok_or("unterminated ingest object")?
            + obj_start;
        let obj = &cursor[obj_start..=obj_end];
        modes.push(IngestBaseline {
            mode: json_str(obj, "mode").ok_or("ingest object missing \"mode\"")?,
            records_per_s: json_num(obj, "records_per_s")
                .ok_or("ingest object missing \"records_per_s\"")?,
        });
        cursor = &cursor[obj_end + 1..];
    }
    Ok(modes)
}

/// Compares current ingestion throughput against a baseline and returns
/// the modes that regressed: throughput down by more than
/// [`COMPARE_MAX_RELATIVE_SLOWDOWN`] relative to the baseline. Modes
/// present on only one side are ignored, like [`compare_stages`].
pub fn compare_ingest(
    baseline: &[IngestBaseline],
    current: &[(String, f64)],
) -> Vec<IngestRegression> {
    let mut regressions = Vec::new();
    for base in baseline {
        let Some((_, cur)) = current.iter().find(|(name, _)| *name == base.mode) else {
            continue;
        };
        if *cur < (1.0 - COMPARE_MAX_RELATIVE_SLOWDOWN) * base.records_per_s {
            regressions.push(IngestRegression {
                mode: base.mode.clone(),
                baseline_rps: base.records_per_s,
                current_rps: *cur,
            });
        }
    }
    regressions
}

/// Compares current per-stage serial timings against a baseline and
/// returns the stages that regressed: slower by more than
/// [`COMPARE_MAX_RELATIVE_SLOWDOWN`] relative AND [`COMPARE_MIN_DELTA_S`]
/// absolute. Stages present on only one side are ignored (renames and new
/// stages don't fail the gate; the baseline should be refreshed instead).
pub fn compare_stages(
    baseline: &[StageBaseline],
    current: &[(String, f64)],
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for base in baseline {
        let Some((_, cur)) = current.iter().find(|(name, _)| *name == base.stage) else {
            continue;
        };
        let delta = cur - base.serial_s;
        if delta > COMPARE_MIN_DELTA_S
            && delta > COMPARE_MAX_RELATIVE_SLOWDOWN * base.serial_s
        {
            regressions.push(Regression {
                stage: base.stage.clone(),
                baseline_s: base.serial_s,
                current_s: *cur,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_study_is_cached() {
        let a = small_study() as *const Study;
        let b = small_study() as *const Study;
        assert_eq!(a, b);
    }

    const SAMPLE: &str = r#"{
  "schema": "mobilenet-bench-baseline/v1",
  "stages": [
    { "stage": "generation", "serial_s": 0.3095, "parallel_s": 0.1536, "speedup": 2.01 },
    { "stage": "kshape_sweep", "serial_s": 2.1086, "parallel_s": 2.1826, "speedup": 0.97 },
    { "stage": "peaks", "serial_s": 0.0001, "parallel_s": 0.0005, "speedup": 0.24 }
  ],
  "total_serial_s": 3.7938
}"#;

    #[test]
    fn parses_stage_array() {
        let stages = parse_stage_baselines(SAMPLE).unwrap();
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[0].stage, "generation");
        assert_eq!(stages[0].serial_s, 0.3095);
        assert_eq!(stages[1].stage, "kshape_sweep");
        assert_eq!(stages[1].parallel_s, 2.1826);
    }

    #[test]
    fn rejects_files_without_stages() {
        assert!(parse_stage_baselines("{}").is_err());
        assert!(parse_stage_baselines("{\"stages\": []}").is_err());
    }

    #[test]
    fn flags_only_real_regressions() {
        let baseline = parse_stage_baselines(SAMPLE).unwrap();
        let current = vec![
            // 50% slower and > 50 ms: regression.
            ("generation".to_string(), 0.47),
            // Faster: fine.
            ("kshape_sweep".to_string(), 0.40),
            // 400% slower but sub-millisecond: ignored (absolute floor).
            ("peaks".to_string(), 0.0005),
        ];
        let regs = compare_stages(&baseline, &current);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].stage, "generation");
    }

    const INGEST_SAMPLE: &str = r#"{
  "schema": "mobilenet-bench-baseline/v1",
  "stages": [
    { "stage": "generation", "serial_s": 0.3095, "parallel_s": 0.1536, "speedup": 2.01 }
  ],
  "ingest": [
    { "mode": "streaming", "seconds": 1.2, "records": 3300000, "records_per_s": 2750000 },
    { "mode": "replay_batched", "seconds": 0.15, "records": 3300000, "records_per_s": 22000000 }
  ],
  "obs": { "counters": { "netsim.ingest.chunks": 5 } }
}"#;

    #[test]
    fn parses_ingest_array() {
        let modes = parse_ingest_baselines(INGEST_SAMPLE).unwrap();
        assert_eq!(modes.len(), 2);
        assert_eq!(modes[0].mode, "streaming");
        assert_eq!(modes[0].records_per_s, 2_750_000.0);
        assert_eq!(modes[1].mode, "replay_batched");
        assert_eq!(modes[1].records_per_s, 22_000_000.0);
        // Pre-ingest baselines gate nothing instead of erroring.
        assert_eq!(parse_ingest_baselines("{\"stages\": []}").unwrap(), Vec::new());
    }

    #[test]
    fn flags_only_real_throughput_drops() {
        let baseline = parse_ingest_baselines(INGEST_SAMPLE).unwrap();
        let current = vec![
            // 30% drop: regression.
            ("streaming".to_string(), 1_925_000.0),
            // 10% drop: within tolerance.
            ("replay_batched".to_string(), 19_800_000.0),
            // Unknown modes are ignored.
            ("replay_rows".to_string(), 1.0),
        ];
        let regs = compare_ingest(&baseline, &current);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].mode, "streaming");
        assert_eq!(regs[0].baseline_rps, 2_750_000.0);
        assert!(compare_ingest(&baseline, &[("streaming".to_string(), 2_800_000.0)]).is_empty());
    }

    #[test]
    fn within_tolerance_is_clean() {
        let baseline = parse_stage_baselines(SAMPLE).unwrap();
        let current = vec![
            ("generation".to_string(), 0.33),
            ("kshape_sweep".to_string(), 2.2),
            ("missing_stage_is_ignored".to_string(), 99.0),
        ];
        assert!(compare_stages(&baseline, &current).is_empty());
    }
}
