//! Output-quality ablations of the design choices DESIGN.md calls out.
//!
//! ```text
//! ablations [--seed N]
//! ```
//!
//! Six studies, each printing a small table:
//!
//! 1. **Localization-error sweep** — how the ULI error (0–10 km median)
//!    distorts the spatial statistics (mean pairwise r², commune
//!    misassignment, Twitter top-10% concentration, Moran's I).
//! 2. **Classification-rate sweep** — how DPI loss (70–100%) moves the
//!    service rankings (top-service share, video category share).
//! 3. **Peak-detector parameter sweep** — stability of the seven topical
//!    times under lag/threshold/influence changes (midday-peak count).
//! 4. **k-shape vs k-means** — quality indices of both algorithms on the
//!    same series, at the silhouette-best k of each.
//! 5. **Agglomerative clustering** — Figure 5's "no clean k" re-checked
//!    under single/complete/average linkage.
//! 6. **Gravity commuting** — what relocating working-hours sessions to
//!    work communes does to the spatial statistics.
//! 7. **Capture-fault bias** — how much record loss / duplication the
//!    headline claims tolerate (mean pairwise r² vs the paper's ≈ 0.60
//!    downlink figure, topical-peak assignment agreement with the
//!    fault-free baseline) before they flip.

use std::sync::Arc;

use mobilenet_core::peaks::PeakConfig;
use mobilenet_core::ranking::service_ranking;
use mobilenet_core::spatial::{concentration, spatial_correlation};
use mobilenet_core::study::Study;
use mobilenet_core::temporal::{clustering_sweep, Algorithm};
use mobilenet_core::topical::topical_profiles;
use mobilenet_core::Pipeline;
use mobilenet_geo::{Country, CountryConfig};
use mobilenet_netsim::{collect_with_options, CollectOptions, FaultPlan, NetsimConfig};
use mobilenet_traffic::{DemandModel, Direction, ServiceCatalog, TopicalTime, TrafficConfig};

fn main() {
    let seed: u64 = std::env::args()
        .skip(1)
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--seed")
        .map(|w| w[1].parse().expect("--seed must be an integer"))
        .unwrap_or(mobilenet_bench::SEED);

    localization_sweep(seed);
    classification_sweep(seed);
    detector_sweep(seed);
    kshape_vs_kmeans(seed);
    hierarchical_check(seed);
    mobility_sweep(seed);
    fault_sweep(seed);
}

/// A small measured study at `seed`, assembled through the pipeline
/// builder (the ablation sweeps each re-collect their own variants via
/// [`Study::from_parts`]).
fn small_study(seed: u64) -> Study {
    Pipeline::builder().seed(seed).run().expect("small config is valid").into_study()
}

/// Ablation 1: ULI localization error vs spatial statistics.
fn localization_sweep(seed: u64) {
    println!("== ablation 1: ULI localization error ==");
    println!("median_km  misassign  mean_r2  twitter_top10  morans_i");
    let country = Arc::new(Country::generate(&CountryConfig::small(), seed));
    let catalog = Arc::new(ServiceCatalog::standard(80));
    let model = DemandModel::new(country, catalog, TrafficConfig::fast(), seed);
    for err_km in [0.0, 1.0, 3.0, 6.0, 10.0] {
        let mut cfg = NetsimConfig::standard();
        cfg.uli_median_error_km = err_km;
        if err_km == 0.0 {
            cfg.uli_stale_prob = 0.0;
        }
        let out = collect_with_options(&model, &cfg, &CollectOptions::default(), seed)
            .expect("ablation config is valid");
        let study = Study::from_parts(model.clone(), out);
        let corr = spatial_correlation(&study, Direction::Down);
        let twitter = study
            .catalog()
            .head()
            .iter()
            .position(|s| s.name == "Twitter")
            .unwrap();
        let conc = concentration(&study, twitter);
        let moran = mobilenet_core::spatial::morans_i(
            study.country(),
            &study.dataset().per_user_commune_vector(Direction::Down, twitter),
            6,
        );
        println!(
            "{:>9.1}  {:>9.3}  {:>7.3}  {:>13.3}  {:>8.3}",
            err_km,
            study
                .collection_stats()
                .map(|s| s.misassignment_rate())
                .unwrap_or(0.0),
            corr.mean_r2,
            conc.top10_share,
            moran
        );
    }
    println!();
}

/// Ablation 2: DPI classification rate vs rankings.
fn classification_sweep(seed: u64) {
    println!("== ablation 2: DPI classification rate ==");
    println!("rate  head_share  video_share  unclassified");
    let country = Arc::new(Country::generate(&CountryConfig::small(), seed));
    let catalog = Arc::new(ServiceCatalog::standard(80));
    for rate in [0.70, 0.80, 0.88, 0.95, 1.00] {
        let mut tc = TrafficConfig::fast();
        tc.classified_fraction = rate;
        let model = DemandModel::new(country.clone(), catalog.clone(), tc, seed);
        let out = collect_with_options(&model, &NetsimConfig::standard(), &CollectOptions::default(), seed)
            .expect("standard config is valid");
        let study = Study::from_parts(model.clone(), out);
        let ranking = service_ranking(&study, Direction::Down);
        let video = ranking
            .category_shares
            .get("video streaming")
            .copied()
            .unwrap_or(0.0);
        println!(
            "{:.2}  {:>10.3}  {:>11.3}  {:>12.3}",
            rate, ranking.head_share, video, ranking.unclassified_share
        );
    }
    println!();
}

/// Ablation 3: smoothed z-score parameters vs topical-time recovery.
fn detector_sweep(seed: u64) {
    println!("== ablation 3: peak-detector parameters ==");
    println!("lag  threshold  influence  midday_peaks  off_topical");
    let study = small_study(seed);
    let configs = [
        PeakConfig { lag: 2, threshold: 3.0, influence: 0.4 }, // the paper's
        PeakConfig { lag: 2, threshold: 2.0, influence: 0.4 },
        PeakConfig { lag: 2, threshold: 4.0, influence: 0.4 },
        PeakConfig { lag: 4, threshold: 3.0, influence: 0.4 },
        PeakConfig { lag: 8, threshold: 3.0, influence: 0.4 },
        PeakConfig { lag: 2, threshold: 3.0, influence: 0.1 },
        PeakConfig { lag: 2, threshold: 3.0, influence: 0.8 },
    ];
    for cfg in configs {
        let profiles = topical_profiles(&study, Direction::Down, &cfg);
        let midday = profiles
            .iter()
            .filter(|p| p.has_peak[TopicalTime::Midday.index()])
            .count();
        let off: usize = profiles.iter().map(|p| p.off_topical_fronts).sum();
        println!(
            "{:>3}  {:>9.1}  {:>9.1}  {:>12}  {:>11}",
            cfg.lag, cfg.threshold, cfg.influence, midday, off
        );
    }
    println!();
}

/// Ablation 4: k-shape vs the Euclidean k-means baseline.
fn kshape_vs_kmeans(seed: u64) {
    println!("== ablation 4: k-shape vs k-means ==");
    println!("algorithm  best_k_sil  silhouette  db  decreasing_frac");
    let study = small_study(seed);
    for algorithm in [Algorithm::KShape, Algorithm::KMeans] {
        let sweep = clustering_sweep(&study, Direction::Down, algorithm, 3);
        let best = sweep
            .points
            .iter()
            .max_by(|a, b| a.scores.silhouette.partial_cmp(&b.scores.silhouette).unwrap())
            .unwrap();
        println!(
            "{:<9}  {:>10}  {:>10.3}  {:>5.2}  {:>15.2}",
            format!("{algorithm:?}"),
            best.k,
            best.scores.silhouette,
            best.scores.davies_bouldin,
            sweep.silhouette_decreasing_fraction()
        );
    }
    println!();
}

/// Ablation 6: the gravity-commuting extension — how does relocating
/// working-hours sessions to work communes move the spatial statistics?
fn mobility_sweep(seed: u64) {
    use mobilenet_core::urbanization::{mean_volume_ratios, urbanization_profiles};

    println!("== ablation 6: gravity commuting (share of relocated sessions) ==");
    println!("share  urban_moran  rural_ratio  tgv_ratio");
    let country = Arc::new(Country::generate(&CountryConfig::small(), seed));
    let catalog = Arc::new(ServiceCatalog::standard(80));
    for share in [0.0, 0.15, 0.3, 0.5] {
        let mut tc = TrafficConfig::fast();
        tc.commuter_share = share;
        let model = DemandModel::new(country.clone(), catalog.clone(), tc, seed);
        let out = collect_with_options(&model, &NetsimConfig::standard(), &CollectOptions::default(), seed)
            .expect("standard config is valid");
        let study = Study::from_parts(model.clone(), out);
        let twitter = study
            .catalog()
            .head()
            .iter()
            .position(|s| s.name == "Twitter")
            .unwrap();
        let moran = mobilenet_core::spatial::morans_i(
            study.country(),
            &study.dataset().per_user_commune_vector(Direction::Down, twitter),
            6,
        );
        let ratios = mean_volume_ratios(&urbanization_profiles(&study, Direction::Down));
        println!(
            "{share:.2}  {:>11.3}  {:>11.2}  {:>9.2}",
            moran, ratios[2], ratios[3]
        );
    }
    println!();
}

/// Ablation 5: does hierarchical clustering find a clean k either?
/// (Milligan & Cooper's indices were developed with hierarchical methods.)
fn hierarchical_check(seed: u64) {
    use mobilenet_cluster::hierarchy::{agglomerate, Linkage};
    use mobilenet_cluster::silhouette;
    use mobilenet_timeseries::norm::z_normalize;
    use mobilenet_timeseries::sbd::shape_based_distance;

    println!("== ablation 5: agglomerative clustering (SBD, per linkage) ==");
    println!("linkage   best_k  silhouette");
    let study = small_study(seed);
    let series: Vec<Vec<f64>> = (0..study.catalog().head().len())
        .map(|s| z_normalize(study.dataset().national_series(Direction::Down, s)))
        .collect();
    for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
        let dendro = agglomerate(&series, linkage, shape_based_distance);
        let mut best = (0usize, f64::NEG_INFINITY);
        for k in 2..series.len() {
            let clustering = dendro.cut_clustering(&series, k, shape_based_distance);
            let sil = silhouette(&series, &clustering, shape_based_distance);
            if sil > best.1 {
                best = (k, sil);
            }
        }
        println!("{:<8}  {:>6}  {:>10.3}", format!("{linkage:?}"), best.0, best.1);
    }
    println!("(low silhouettes across all three linkages confirm Figure 5's finding)");
    println!();
}

/// Ablation 7: capture-fault bias — how much record loss/duplication the
/// headline claims (mean pairwise r² ≈ 0.60 downlink, the topical-peak
/// matrix) tolerate before they flip.
fn fault_sweep(seed: u64) {
    println!("== ablation 7: capture faults vs headline claims ==");
    println!("loss  dup   lost_frac  mean_r2  peak_agreement");
    let country = Arc::new(Country::generate(&CountryConfig::small(), seed));
    let catalog = Arc::new(ServiceCatalog::standard(80));
    let model = DemandModel::new(country, catalog, TrafficConfig::fast(), seed);
    let netsim = NetsimConfig::standard();

    let clean = collect_with_options(&model, &netsim, &CollectOptions::default(), seed)
        .expect("identity plan is valid");
    let baseline = Study::from_parts(model.clone(), clean);
    let base_profiles = topical_profiles(&baseline, Direction::Down, &PeakConfig::paper());

    for (loss, dup) in [
        (0.0, 0.0),
        (0.05, 0.0),
        (0.10, 0.0),
        (0.25, 0.0),
        (0.50, 0.0),
        (0.10, 0.05),
        (0.25, 0.10),
    ] {
        let plan = FaultPlan { seed, loss_prob: loss, dup_prob: dup, ..FaultPlan::none() };
        let out = collect_with_options(&model, &netsim, &CollectOptions::with_faults(plan.clone()), seed)
            .expect("plan is valid");
        let lost_frac = out.stats.faults.lost_total() as f64 / out.stats.sessions as f64;
        let study = Study::from_parts(model.clone(), out);
        let corr = spatial_correlation(&study, Direction::Down);
        let profiles = topical_profiles(&study, Direction::Down, &PeakConfig::paper());
        let mut agree = 0usize;
        let mut cells = 0usize;
        for (a, b) in base_profiles.iter().zip(&profiles) {
            for t in TopicalTime::ALL {
                cells += 1;
                if a.has_peak[t.index()] == b.has_peak[t.index()] {
                    agree += 1;
                }
            }
        }
        println!(
            "{:.2}  {:.2}  {:>9.3}  {:>7.3}  {:>14.3}",
            loss,
            dup,
            lost_frac,
            corr.mean_r2,
            agree as f64 / cells as f64
        );
    }
    println!();
}
