//! Emits `BENCH_baseline.json`: wall-clock timings of the pipeline's hot
//! stages, serial (1 thread) versus parallel (all configured workers).
//!
//! ```text
//! bench_baseline [--scale small|medium|france|national] [--seed N] [--out FILE]
//!                [--threads N] [--compare FILE]
//! ```
//!
//! At `--scale national` (~10⁸ sessions) the binary runs the
//! streaming-ingest benchmark only: the analysis-stage passes, the
//! materialized ingest mode and the record-replay capture all require (or
//! build) state proportional to the record count, and the point of the
//! national tier is that the full record set is never resident. The
//! emitted JSON then has an empty `stages` array and a single
//! `streaming` ingest row (records/s + peak resident records), and
//! `--compare` gates throughput only.
//!
//! `--compare FILE` reads a previously committed baseline and exits
//! non-zero if any stage's serial time regressed by more than 25%
//! relative *and* 50 ms absolute (the absolute floor keeps
//! microsecond-scale stages from flaking the gate). CI runs this against
//! the committed per-PR baseline.
//!
//! Every stage is the same computation the `figures` binary runs; the
//! parallel pass must produce bit-identical results (asserted here via
//! the dataset CSV) *and* an identical observability fingerprint, so the
//! timings compare only scheduling. Timings are read from the
//! `mobilenet-obs` span registry — the same probes every binary reports —
//! and the parallel pass's full snapshot is embedded under the `"obs"`
//! key for per-stage drill-down.

use std::fs;
use std::path::PathBuf;

use mobilenet_core::peaks::PeakConfig;
use mobilenet_core::spatial::spatial_correlation;
use mobilenet_core::study::Study;
use mobilenet_core::temporal::{clustering_sweep, Algorithm};
use mobilenet_core::topical::topical_profiles;
use mobilenet_core::Scale;
use mobilenet_geo::Country;
use mobilenet_netsim::{
    collect_with_options, observe_with_options, CollectOptions, FoldStrategy, SliceSource,
};
use mobilenet_traffic::{DemandModel, Direction, ServiceCatalog};
use std::sync::Arc;

/// Stage span names, in pipeline order. Each pass opens exactly these
/// five root spans, so the snapshot is the timing source of truth.
const STAGES: [&str; 5] = ["generation", "aggregation", "pairwise_r2", "kshape_sweep", "peaks"];

struct Args {
    scale: Scale,
    seed: u64,
    out: PathBuf,
    threads: usize,
    compare: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Medium,
        seed: mobilenet_bench::SEED,
        out: PathBuf::from("BENCH_baseline.json"),
        threads: mobilenet_par::current_threads(),
        compare: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let name = it.next().expect("--scale needs a value");
                args.scale = name.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer")
            }
            "--out" => args.out = PathBuf::from(it.next().expect("--out needs a value")),
            "--compare" => {
                args.compare =
                    Some(PathBuf::from(it.next().expect("--compare needs a value")))
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .expect("--threads needs a value")
                    .parse()
                    .expect("--threads must be a positive integer");
                assert!(args.threads >= 1, "--threads must be at least 1");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Seconds spent in each stage span, in [`STAGES`] order.
fn stage_seconds(snap: &mobilenet_obs::Snapshot) -> [f64; 5] {
    let mut out = [0.0; 5];
    for (i, name) in STAGES.iter().enumerate() {
        out[i] = snap
            .span(name)
            .map(|s| s.total_ns as f64 / 1e9)
            .unwrap_or_else(|| panic!("stage span {name:?} missing from snapshot"));
    }
    out
}

fn main() {
    let args = parse_args();
    let config = args.scale.config();
    let national = args.scale == Scale::National;

    println!(
        "bench_baseline: {} scale, seed {}, serial vs {} threads",
        args.scale, args.seed, args.threads
    );
    let country = Arc::new(Country::generate(&config.country, args.seed));
    let catalog = Arc::new(ServiceCatalog::standard(config.traffic.n_tail_services));
    let model = DemandModel::new(
        country.clone(),
        catalog.clone(),
        config.traffic.clone(),
        args.seed,
    );

    let mut serial_s = [0.0f64; 5];
    let mut parallel_s = [0.0f64; 5];
    let mut digests: Vec<String> = Vec::new();
    let mut fingerprints: Vec<String> = Vec::new();
    let mut parallel_obs_json = String::new();

    // National runs skip the analysis-stage passes entirely: each would
    // hold a fully materialized study, and the tier's contract is that
    // nothing proportional to the record count is ever resident.
    let stage_passes: Vec<(&str, usize)> =
        if national { Vec::new() } else { vec![("serial", 1), ("parallel", args.threads)] };
    for (pass, threads) in stage_passes {
        mobilenet_par::set_thread_override(Some(threads));
        mobilenet_obs::set_enabled(Some(true));
        mobilenet_obs::reset();
        println!("-- {pass} pass ({threads} thread{})", if threads == 1 { "" } else { "s" });

        // Stage 1: demand evaluation (noise-free expected cube, parallel
        // over services).
        let expected = {
            let _s = mobilenet_obs::span("generation");
            model.expected_dataset()
        };

        // Stage 2: full measurement pipeline (sessions -> probes -> DPI ->
        // aggregation, parallel over per-service shards).
        let output = {
            let _s = mobilenet_obs::span("aggregation");
            collect_with_options(&model, &config.netsim, &CollectOptions::default(), args.seed)
                .expect("scale configs are valid")
        };
        let study = Study::from_parts(model.clone(), output);

        // Stage 3: Figure 10 pairwise r^2 matrix (parallel over service
        // pairs).
        let corr = {
            let _s = mobilenet_obs::span("pairwise_r2");
            spatial_correlation(&study, Direction::Down)
        };

        // Stage 4: Figure 5 k-shape sweep (parallel over k).
        let sweep = {
            let _s = mobilenet_obs::span("kshape_sweep");
            clustering_sweep(&study, Direction::Down, Algorithm::KShape, 5)
        };

        // Stage 5: Figures 6-7 peak profiling (parallel over services).
        let profiles = {
            let _s = mobilenet_obs::span("peaks");
            topical_profiles(&study, Direction::Down, &PeakConfig::paper())
        };

        // Stage timings come from the span registry — the exact probes
        // every other binary reports, one timing source of truth.
        let snap = mobilenet_obs::snapshot();
        let secs = stage_seconds(&snap);
        for (name, s) in STAGES.iter().zip(secs.iter()) {
            println!("   {name:<12} {s:>8.2}s");
        }
        if pass == "serial" {
            serial_s = secs;
        } else {
            parallel_s = secs;
            parallel_obs_json = snap.to_json();
        }
        fingerprints.push(snap.counts_fingerprint());

        // Cheap digest of every stage's output; serial and parallel passes
        // must agree exactly.
        let digest = format!(
            "{:x}-{}-{}-{}-{}",
            expected.national_series(Direction::Down, 0)[0].to_bits()
                ^ study.dataset().national_series(Direction::Down, 0)[0].to_bits(),
            corr.mean_r2.to_bits(),
            sweep.best_k_by_silhouette(),
            profiles.iter().filter(|p| p.has_peak.iter().any(|&b| b)).count(),
            study.dataset().to_csv().len(),
        );
        digests.push(digest);
    }
    // Streaming-vs-materialized comparison: the same collection once with
    // an effectively unbounded chunk (each shard materialized whole) and
    // once with the default bounded chunk, at the parallel thread count.
    // Throughput must be comparable and the outputs bit-identical; peak
    // resident records shows the memory bound doing its job.
    mobilenet_par::set_thread_override(Some(args.threads));
    if national {
        println!(
            "-- national: streaming ingest only (stage passes, materialized mode \
             and replay capture skipped)"
        );
        mobilenet_obs::set_enabled(Some(true));
        mobilenet_obs::reset();
    }
    println!("-- streaming ingestion ({} threads)", args.threads);
    let mut ingest_entries: Vec<String> = Vec::new();
    let mut ingest_rps: Vec<(String, f64)> = Vec::new();
    let mut ingest_csvs: Vec<usize> = Vec::new();
    let default_chunk = CollectOptions::default().chunk_size;
    let ingest_modes: Vec<(&str, usize)> = if national {
        vec![("streaming", default_chunk)]
    } else {
        vec![("materialized", usize::MAX), ("streaming", default_chunk)]
    };
    for (mode, chunk) in ingest_modes {
        let options = CollectOptions::default().chunk_size(chunk);
        let t0 = std::time::Instant::now();
        let out = collect_with_options(&model, &config.netsim, &options, args.seed)
            .expect("scale configs are valid");
        let secs = t0.elapsed().as_secs_f64();
        let records = out.ingest.records;
        let throughput = if secs > 0.0 { records as f64 / secs } else { 0.0 };
        println!(
            "   {mode:<14} {secs:>8.2}s  {throughput:>12.0} rec/s  peak resident {:>10}",
            out.ingest.peak_resident_records
        );
        ingest_entries.push(format!(
            "    {{ \"mode\": \"{mode}\", \"seconds\": {:.4}, \"records\": {}, \
             \"records_per_s\": {:.0}, \"peak_resident_records\": {}, \"workers\": {} }}",
            secs,
            records,
            throughput,
            out.ingest.peak_resident_records,
            out.ingest.workers,
        ));
        ingest_rps.push((mode.to_string(), throughput));
        if !national {
            ingest_csvs.push(out.dataset.to_csv().len());
        }
    }
    if ingest_csvs.len() == 2 {
        assert_eq!(
            ingest_csvs[0], ingest_csvs[1],
            "streaming collection diverged from the materialized path"
        );
    }

    // Pure record-aggregation replay: capture the record stream once,
    // then time only the fold (no session synthesis, no probe RNG) —
    // row-at-a-time versus the columnar batched fold. This is where the
    // dense-accumulation rewrite shows up: synthesis costs hundreds of
    // nanoseconds per record and would otherwise drown the aggregation
    // signal.
    // The replay benchmark captures every record in memory by design
    // (it isolates the fold from synthesis), so it only runs at scales
    // where the whole record set fits comfortably.
    if !national {
        let mut captured: Vec<mobilenet_netsim::SessionRecord> = Vec::new();
        observe_with_options(&model, &config.netsim, &CollectOptions::default(), args.seed, |r| {
            captured.push(r.clone())
        })
        .expect("scale configs are valid");
        let mut replay_csvs: Vec<usize> = Vec::new();
        for (mode, fold) in
            [("replay_rows", FoldStrategy::RowAtATime), ("replay_batched", FoldStrategy::Batched)]
        {
            let options = CollectOptions::default().fold_strategy(fold);
            let source = SliceSource::new(&captured);
            // One warm-up pass so allocator and caches settle, then the
            // timed pass.
            mobilenet_netsim::ingest(&source, &model, &options).expect("replay options are valid");
            let t0 = std::time::Instant::now();
            let out = mobilenet_netsim::ingest(&source, &model, &options)
                .expect("replay options are valid");
            let secs = t0.elapsed().as_secs_f64();
            let records = out.ingest.records;
            let throughput = if secs > 0.0 { records as f64 / secs } else { 0.0 };
            println!("   {mode:<14} {secs:>8.2}s  {throughput:>12.0} rec/s");
            ingest_entries.push(format!(
                "    {{ \"mode\": \"{mode}\", \"seconds\": {:.4}, \"records\": {}, \
                 \"records_per_s\": {:.0}, \"peak_resident_records\": {}, \"workers\": {} }}",
                secs,
                records,
                throughput,
                out.ingest.peak_resident_records,
                out.ingest.workers,
            ));
            ingest_rps.push((mode.to_string(), throughput));
            replay_csvs.push(out.dataset.to_csv().len());
        }
        assert_eq!(
            replay_csvs[0], replay_csvs[1],
            "batched replay fold diverged from the row-at-a-time fold"
        );
    }
    let ingest_json = format!("{}\n", ingest_entries.join(",\n"));
    if national {
        // No analysis passes ran, so the ingest run's snapshot is the
        // observability payload.
        parallel_obs_json = mobilenet_obs::snapshot().to_json();
    }
    mobilenet_par::set_thread_override(None);
    mobilenet_obs::set_enabled(None);
    if !national {
        assert_eq!(
            digests[0], digests[1],
            "parallel pass diverged from serial pass — determinism bug"
        );
        assert_eq!(
            fingerprints[0], fingerprints[1],
            "obs counters diverged between serial and parallel passes — \
             a probe is recording scheduling-dependent counts"
        );
        println!("-- output digests and obs fingerprints match: {}", digests[0]);
    }

    let mut stages_json = String::new();
    if !national {
        for (i, name) in STAGES.iter().enumerate() {
            let speedup = if parallel_s[i] > 0.0 { serial_s[i] / parallel_s[i] } else { 0.0 };
            stages_json.push_str(&format!(
                "    {{ \"stage\": \"{name}\", \"serial_s\": {:.4}, \"parallel_s\": {:.4}, \"speedup\": {:.2} }}{}\n",
                serial_s[i],
                parallel_s[i],
                speedup,
                if i + 1 < STAGES.len() { "," } else { "" }
            ));
        }
    }
    let total_serial: f64 = serial_s.iter().sum();
    let total_parallel: f64 = parallel_s.iter().sum();
    // The parallel pass's full observability snapshot, re-indented to sit
    // as a nested object.
    let obs_nested = parallel_obs_json.trim_end().replace('\n', "\n  ");
    let json = format!(
        "{{\n  \"schema\": \"mobilenet-bench-baseline/v1\",\n  \"scale\": \"{}\",\n  \"seed\": {},\n  \"threads_serial\": 1,\n  \"threads_parallel\": {},\n  \"machine_parallelism\": {},\n  \"stages\": [\n{}  ],\n  \"ingest\": [\n{}  ],\n  \"total_serial_s\": {:.4},\n  \"total_parallel_s\": {:.4},\n  \"total_speedup\": {:.2},\n  \"obs\": {}\n}}\n",
        args.scale,
        args.seed,
        args.threads,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        stages_json,
        ingest_json,
        total_serial,
        total_parallel,
        if total_parallel > 0.0 { total_serial / total_parallel } else { 0.0 },
        obs_nested,
    );
    fs::write(&args.out, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", args.out.display()));
    println!("baseline written to {}", args.out.display());

    if let Some(path) = &args.compare {
        let text = fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        // National baselines carry no stage timings — only the ingest
        // throughput side of the gate applies.
        if !national {
            let baseline = mobilenet_bench::parse_stage_baselines(&text)
                .unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
            let current: Vec<(String, f64)> = STAGES
                .iter()
                .zip(serial_s.iter())
                .map(|(name, s)| (name.to_string(), *s))
                .collect();
            println!("-- comparing serial timings against {}", path.display());
            for base in &baseline {
                let Some((_, cur)) = current.iter().find(|(n, _)| *n == base.stage) else {
                    println!("   {:<12} (not measured this run)", base.stage);
                    continue;
                };
                let ratio = if base.serial_s > 0.0 { cur / base.serial_s } else { 0.0 };
                println!(
                    "   {:<12} {:>8.4}s -> {:>8.4}s  ({:.2}x baseline)",
                    base.stage, base.serial_s, cur, ratio
                );
            }
            let regressions = mobilenet_bench::compare_stages(&baseline, &current);
            if regressions.is_empty() {
                println!("-- no stage regressed beyond the gate (>25% and >50ms)");
            } else {
                for r in &regressions {
                    eprintln!(
                        "REGRESSION: {} went {:.4}s -> {:.4}s ({:+.0}%)",
                        r.stage,
                        r.baseline_s,
                        r.current_s,
                        100.0 * (r.current_s - r.baseline_s) / r.baseline_s
                    );
                }
                std::process::exit(1);
            }
        }

        // Throughput side of the gate: ingestion modes must not lose more
        // than 25% of their baseline records/s.
        let ingest_baseline = mobilenet_bench::parse_ingest_baselines(&text)
            .unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
        println!("-- comparing ingestion throughput against {}", path.display());
        for base in &ingest_baseline {
            let Some((_, cur)) = ingest_rps.iter().find(|(n, _)| *n == base.mode) else {
                println!("   {:<14} (not measured this run)", base.mode);
                continue;
            };
            let ratio = if base.records_per_s > 0.0 { cur / base.records_per_s } else { 0.0 };
            println!(
                "   {:<14} {:>12.0} -> {:>12.0} rec/s  ({:.2}x baseline)",
                base.mode, base.records_per_s, cur, ratio
            );
        }
        let ingest_regressions =
            mobilenet_bench::compare_ingest(&ingest_baseline, &ingest_rps);
        if ingest_regressions.is_empty() {
            println!("-- no ingestion mode lost more than 25% throughput");
        } else {
            for r in &ingest_regressions {
                eprintln!(
                    "REGRESSION: ingest {} went {:.0} -> {:.0} rec/s ({:+.0}%)",
                    r.mode,
                    r.baseline_rps,
                    r.current_rps,
                    100.0 * (r.current_rps - r.baseline_rps) / r.baseline_rps
                );
            }
            std::process::exit(1);
        }
    }
}
