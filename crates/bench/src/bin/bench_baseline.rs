//! Emits `BENCH_baseline.json`: wall-clock timings of the pipeline's hot
//! stages, serial (1 thread) versus parallel (all configured workers).
//!
//! ```text
//! bench_baseline [--scale small|medium|france] [--seed N] [--out FILE]
//!                [--threads N]
//! ```
//!
//! Every stage is the same computation the `figures` binary runs; the
//! parallel pass must produce bit-identical results (asserted here via
//! the dataset CSV), so the timings compare *only* scheduling.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use mobilenet_core::peaks::PeakConfig;
use mobilenet_core::spatial::spatial_correlation;
use mobilenet_core::study::{Study, StudyConfig};
use mobilenet_core::temporal::{clustering_sweep, Algorithm};
use mobilenet_core::topical::topical_profiles;
use mobilenet_geo::Country;
use mobilenet_netsim::collect;
use mobilenet_traffic::{DemandModel, Direction, ServiceCatalog};

struct Args {
    scale: String,
    seed: u64,
    out: PathBuf,
    threads: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: "medium".to_string(),
        seed: mobilenet_bench::SEED,
        out: PathBuf::from("BENCH_baseline.json"),
        threads: mobilenet_par::current_threads(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => args.scale = it.next().expect("--scale needs a value"),
            "--seed" => {
                args.seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer")
            }
            "--out" => args.out = PathBuf::from(it.next().expect("--out needs a value")),
            "--threads" => {
                args.threads = it
                    .next()
                    .expect("--threads needs a value")
                    .parse()
                    .expect("--threads must be a positive integer");
                assert!(args.threads >= 1, "--threads must be at least 1");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One stage timed under one thread count.
fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64(), r)
}

fn main() {
    let args = parse_args();
    let config = match args.scale.as_str() {
        "small" => StudyConfig::small(),
        "medium" => StudyConfig::medium(),
        "france" => StudyConfig::france_scale(),
        other => {
            eprintln!("unknown scale {other}; use small|medium|france");
            std::process::exit(2);
        }
    };

    println!(
        "bench_baseline: {} scale, seed {}, serial vs {} threads",
        args.scale, args.seed, args.threads
    );
    let country = Arc::new(Country::generate(&config.country, args.seed));
    let catalog = Arc::new(ServiceCatalog::standard(config.traffic.n_tail_services));
    let model = DemandModel::new(
        country.clone(),
        catalog.clone(),
        config.traffic.clone(),
        args.seed,
    );

    let stage_names = ["generation", "aggregation", "pairwise_r2", "kshape_sweep", "peaks"];
    let mut serial_s = Vec::new();
    let mut parallel_s = Vec::new();
    let mut digests: Vec<String> = Vec::new();

    for (pass, threads) in [("serial", 1usize), ("parallel", args.threads)] {
        mobilenet_par::set_thread_override(Some(threads));
        println!("-- {pass} pass ({threads} thread{})", if threads == 1 { "" } else { "s" });
        let sink = if pass == "serial" { &mut serial_s } else { &mut parallel_s };

        // Stage 1: demand evaluation (noise-free expected cube, parallel
        // over services).
        let (t, expected) = timed(|| model.expected_dataset());
        println!("   generation   {t:>8.2}s");
        sink.push(t);

        // Stage 2: full measurement pipeline (sessions -> probes -> DPI ->
        // aggregation, parallel over per-service shards).
        let (t, output) = timed(|| collect(&model, &config.netsim, args.seed));
        println!("   aggregation  {t:>8.2}s");
        sink.push(t);

        let study = Study::from_parts(model.clone(), output);

        // Stage 3: Figure 10 pairwise r^2 matrix (parallel over service
        // pairs).
        let (t, corr) = timed(|| spatial_correlation(&study, Direction::Down));
        println!("   pairwise_r2  {t:>8.2}s");
        sink.push(t);

        // Stage 4: Figure 5 k-shape sweep (parallel over k).
        let (t, sweep) = timed(|| clustering_sweep(&study, Direction::Down, Algorithm::KShape, 5));
        println!("   kshape_sweep {t:>8.2}s");
        sink.push(t);

        // Stage 5: Figures 6-7 peak profiling (parallel over services).
        let (t, profiles) = timed(|| topical_profiles(&study, Direction::Down, &PeakConfig::paper()));
        println!("   peaks        {t:>8.2}s");
        sink.push(t);

        // Cheap digest of every stage's output; serial and parallel passes
        // must agree exactly.
        let digest = format!(
            "{:x}-{}-{}-{}-{}",
            expected.national_series(Direction::Down, 0)[0].to_bits()
                ^ study.dataset().national_series(Direction::Down, 0)[0].to_bits(),
            corr.mean_r2.to_bits(),
            sweep.best_k_by_silhouette(),
            profiles.iter().filter(|p| p.has_peak.iter().any(|&b| b)).count(),
            study.dataset().to_csv().len(),
        );
        digests.push(digest);
    }
    mobilenet_par::set_thread_override(None);
    assert_eq!(
        digests[0], digests[1],
        "parallel pass diverged from serial pass — determinism bug"
    );
    println!("-- output digests match: {}", digests[0]);

    let mut stages_json = String::new();
    for (i, name) in stage_names.iter().enumerate() {
        let speedup = if parallel_s[i] > 0.0 { serial_s[i] / parallel_s[i] } else { 0.0 };
        stages_json.push_str(&format!(
            "    {{ \"stage\": \"{name}\", \"serial_s\": {:.4}, \"parallel_s\": {:.4}, \"speedup\": {:.2} }}{}\n",
            serial_s[i],
            parallel_s[i],
            speedup,
            if i + 1 < stage_names.len() { "," } else { "" }
        ));
    }
    let total_serial: f64 = serial_s.iter().sum();
    let total_parallel: f64 = parallel_s.iter().sum();
    let json = format!(
        "{{\n  \"schema\": \"mobilenet-bench-baseline/v1\",\n  \"scale\": \"{}\",\n  \"seed\": {},\n  \"threads_serial\": 1,\n  \"threads_parallel\": {},\n  \"machine_parallelism\": {},\n  \"stages\": [\n{}  ],\n  \"total_serial_s\": {:.4},\n  \"total_parallel_s\": {:.4},\n  \"total_speedup\": {:.2}\n}}\n",
        args.scale,
        args.seed,
        args.threads,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        stages_json,
        total_serial,
        total_parallel,
        if total_parallel > 0.0 { total_serial / total_parallel } else { 0.0 },
    );
    fs::write(&args.out, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", args.out.display()));
    println!("baseline written to {}", args.out.display());
}
