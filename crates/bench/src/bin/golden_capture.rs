//! Captures the exact k-shape sweep output (assignments, iteration
//! counts, centroid bit patterns, index scores) for a given scale/seed,
//! as deterministic text. Used to generate and audit the golden fixture
//! guarding the kernel layer (`tests/golden_kshape.rs`): run it before
//! and after touching `crates/timeseries` / `crates/cluster` and diff.
//!
//! ```text
//! golden_capture [--scale small|medium|france] [--seed N]
//!                [--restarts R] [--threads N]
//! ```

use mobilenet_core::temporal::{clustering_sweep, Algorithm};
use mobilenet_core::{Pipeline, Scale};
use mobilenet_traffic::Direction;

fn fnv1a(bits: impl Iterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bits {
        for byte in b.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn main() {
    let mut scale = Scale::Small;
    let mut seed = 7u64;
    let mut restarts = 3u64;
    let mut threads: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it.next().expect("--scale needs a value").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            }
            "--seed" => seed = it.next().unwrap().parse().expect("--seed must be an integer"),
            "--restarts" => {
                restarts = it.next().unwrap().parse().expect("--restarts must be an integer")
            }
            "--threads" => {
                threads = Some(it.next().unwrap().parse().expect("--threads must be an integer"))
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    mobilenet_par::set_thread_override(threads);

    let study = Pipeline::builder()
        .scale(scale)
        .seed(seed)
        .run()
        .expect("built-in scale configs are valid")
        .into_study();
    let t0 = std::time::Instant::now();
    let sweep = clustering_sweep(&study, Direction::Down, Algorithm::KShape, restarts);
    let elapsed = t0.elapsed().as_secs_f64();

    println!("# golden kshape capture: scale={scale} seed={seed} restarts={restarts}");
    for p in &sweep.points {
        let assignments: Vec<String> =
            p.clustering.assignments.iter().map(|a| a.to_string()).collect();
        let centroid_hash =
            fnv1a(p.clustering.centroids.iter().flatten().map(|v| v.to_bits()));
        println!(
            "k={} iters={} converged={} assignments={} centroid_bits={:016x} db={:016x} dbstar={:016x} dunn={:016x} sil={:016x}",
            p.k,
            p.clustering.iterations,
            p.clustering.converged,
            assignments.join(","),
            centroid_hash,
            p.scores.davies_bouldin.to_bits(),
            p.scores.davies_bouldin_star.to_bits(),
            p.scores.dunn.to_bits(),
            p.scores.silhouette.to_bits(),
        );
    }
    eprintln!("sweep took {elapsed:.3}s");
}
