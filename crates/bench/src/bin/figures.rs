//! Regenerates every table and figure of the paper.
//!
//! ```text
//! figures [--scale small|medium|france|national] [--seed N] [--out DIR] [--expected]
//!         [--threads N] [--obs FILE]
//! ```
//!
//! Writes one CSV (or PGM/text) file per figure under `DIR` (default
//! `out/`) and prints a summary comparing the key numbers against the
//! paper's. The experiment index in `DESIGN.md` maps each output file to
//! the corresponding figure.
//!
//! Observability is always collected (stage timings are read from the
//! span registry rather than ad-hoc stopwatches); `--obs FILE` (or a path
//! in `MOBILENET_OBS`) additionally writes the full snapshot as JSON.

use std::fs;
use std::path::{Path, PathBuf};

use mobilenet_core::peaks::{detect_peaks, PeakConfig};
use mobilenet_core::ranking::{service_ranking, uplink_fraction, zipf_ranking};
use mobilenet_core::report;
use mobilenet_core::spatial::{concentration, spatial_correlation};
use mobilenet_core::temporal::{clustering_sweep, Algorithm};
use mobilenet_core::topical::topical_profiles;
use mobilenet_core::urbanization::{
    mean_temporal_r2, mean_volume_ratios, urbanization_profiles,
};
use mobilenet_core::{maps, maps::coverage_map, Pipeline, Scale};
use mobilenet_traffic::Direction;

struct Args {
    scale: Scale,
    seed: u64,
    out: PathBuf,
    expected: bool,
    threads: Option<usize>,
    obs: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Medium,
        seed: mobilenet_bench::SEED,
        out: PathBuf::from("out"),
        expected: false,
        threads: None,
        obs: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let name = it.next().expect("--scale needs a value");
                args.scale = name.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer")
            }
            "--out" => args.out = PathBuf::from(it.next().expect("--out needs a value")),
            "--expected" => args.expected = true,
            "--threads" => {
                let n: usize = it
                    .next()
                    .expect("--threads needs a value")
                    .parse()
                    .expect("--threads must be a positive integer");
                assert!(n >= 1, "--threads must be at least 1");
                args.threads = Some(n);
            }
            "--obs" => args.obs = Some(PathBuf::from(it.next().expect("--obs needs a value"))),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn write(path: &Path, contents: &str) {
    fs::write(path, contents).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("  wrote {}", path.display());
}

fn main() {
    let args = parse_args();
    fs::create_dir_all(&args.out).expect("creating output directory");

    let mut builder = Pipeline::builder().scale(args.scale).seed(args.seed).obs(true);
    if args.expected {
        builder = builder.expected();
    }
    if let Some(n) = args.threads {
        builder = builder.threads(n);
    }
    let threads = args.threads.unwrap_or_else(mobilenet_par::current_threads);
    println!(
        "generating {} study (seed {}, {} worker thread{})...",
        args.scale,
        args.seed,
        threads,
        if threads == 1 { "" } else { "s" }
    );
    let run = builder.run().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    // The generation stopwatch is the obs span the pipeline itself
    // recorded — one timing source of truth across every binary.
    let gen_s = run
        .obs_snapshot()
        .span("generate")
        .map(|s| s.total_ns as f64 / 1e9)
        .unwrap_or(0.0);
    println!("  done in {gen_s:.1}s");
    let study = run.into_study();

    // Overview (§3 headline numbers).
    write(&args.out.join("overview.txt"), &report::overview_text(&study));

    // Figure 2 — Zipf ranking.
    let fig2 = zipf_ranking(&study);
    write(&args.out.join("fig2_zipf_ranking.csv"), &report::zipf_csv(&fig2));
    if let (Some(dl), Some(ul)) = (&fig2.dl_fit, &fig2.ul_fit) {
        println!(
            "fig2: zipf exponents dl {:.2} (paper 1.69), ul {:.2} (paper 1.55), span {:.1} orders (paper ~10)",
            dl.exponent, ul.exponent, fig2.dl_span_orders
        );
    }

    // Figure 3 — service ranking by share.
    for dir in Direction::BOTH {
        let r = service_ranking(&study, dir);
        let name = format!("fig3_ranking_{}.csv", short(dir));
        write(&args.out.join(name), &report::ranking_csv(&r));
        if dir == Direction::Down {
            let video = r.category_shares.get("video streaming").copied().unwrap_or(0.0);
            println!(
                "fig3: video {:.0}% of downlink (paper >46%), top-20 {:.0}% of total (paper >60%), unclassified {:.0}% (paper 12%)",
                video * 100.0,
                r.head_share * 100.0,
                r.unclassified_share * 100.0
            );
        }
    }
    println!(
        "fig3: uplink fraction of load {:.3} (paper <1/20 = 0.05)",
        uplink_fraction(&study)
    );

    // Figure 4 — sample series + smoothed z-score illustration.
    let peak_cfg = PeakConfig::paper();
    for name in ["Facebook", "SnapChat", "Netflix", "Apple Store"] {
        let idx = study
            .catalog()
            .head()
            .iter()
            .position(|s| s.name == name)
            .expect("sample service exists");
        let series = study.dataset().national_series(Direction::Down, idx).to_vec();
        let det = detect_peaks(&series, &peak_cfg);
        let file = format!(
            "fig4_timeseries_{}.csv",
            name.to_lowercase().replace(' ', "_")
        );
        write(&args.out.join(file), &report::peaks_csv(name, &series, &det, peak_cfg.threshold));
    }

    // Figure 5 — clustering quality sweep.
    for dir in Direction::BOTH {
        let sweep = clustering_sweep(&study, dir, Algorithm::KShape, 5);
        let name = format!("fig5_kshape_indices_{}.csv", short(dir));
        write(&args.out.join(name), &report::sweep_csv(&sweep));
        println!(
            "fig5 {}: best k by DB {}, by silhouette {}, silhouette degrades on {:.0}% of steps (paper: no clear winner)",
            short(dir),
            sweep.best_k_by_db(),
            sweep.best_k_by_silhouette(),
            sweep.silhouette_decreasing_fraction() * 100.0
        );
    }

    // Figures 6 & 7 — topical peaks and intensities.
    let profiles = topical_profiles(&study, Direction::Down, &peak_cfg);
    write(&args.out.join("fig6_topical_peaks.csv"), &report::topical_matrix_csv(&profiles));
    write(&args.out.join("fig7_peak_intensity.csv"), &report::intensity_csv(&profiles));
    let midday = profiles
        .iter()
        .filter(|p| p.has_peak[mobilenet_traffic::TopicalTime::Midday.index()])
        .count();
    println!("fig6: {midday}/20 services peak at weekday midday (paper: almost all)");

    // Figure 8 — Twitter concentration.
    let twitter = study
        .catalog()
        .head()
        .iter()
        .position(|s| s.name == "Twitter")
        .expect("Twitter in catalog");
    let conc = concentration(&study, twitter);
    // At national scale the raw curves hold one point per commune-rank
    // (~36k per section); the export reservoir-samples each section down
    // to a plot-sized, seed-deterministic subset. Smaller scales fall
    // under the cap and export every point, as before.
    write(
        &args.out.join("fig8_twitter_concentration.csv"),
        &report::concentration_csv_sampled(&conc, 4096, args.seed),
    );
    println!(
        "fig8: top 1% of communes carry {:.0}% (paper >50%), top 10% carry {:.0}% (paper >90%) of Twitter traffic",
        conc.top1_share * 100.0,
        conc.top10_share * 100.0
    );

    // Figure 9 — maps.
    let netflix = study
        .catalog()
        .head()
        .iter()
        .position(|s| s.name == "Netflix")
        .expect("Netflix in catalog");
    let width = 120;
    let twitter_map = maps::per_user_map(&study, Direction::Down, twitter, width);
    write(&args.out.join("fig9_map_twitter.pgm"), &twitter_map.to_pgm());
    write(&args.out.join("fig9_map_twitter.txt"), &twitter_map.to_ascii());
    let netflix_map = maps::per_user_map(&study, Direction::Down, netflix, width);
    write(&args.out.join("fig9_map_netflix.pgm"), &netflix_map.to_pgm());
    write(&args.out.join("fig9_map_netflix.txt"), &netflix_map.to_ascii());
    let cover = coverage_map(study.country(), width);
    write(&args.out.join("fig9_map_coverage.pgm"), &cover.to_pgm());

    // Figure 10 — spatial correlation.
    for dir in Direction::BOTH {
        let corr = spatial_correlation(&study, dir);
        let name = format!("fig10_spatial_r2_{}.csv", short(dir));
        write(&args.out.join(name), &report::correlation_csv(&corr));
        println!(
            "fig10 {}: mean pairwise r² {:.2} (paper {:.2}); lowest-correlation services: {}",
            short(dir),
            corr.mean_r2,
            if dir == Direction::Down { 0.60 } else { 0.53 },
            corr.outlier_order()[..3]
                .iter()
                .map(|&i| corr.names[i])
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // Figure 11 — urbanization.
    let urb = urbanization_profiles(&study, Direction::Down);
    write(&args.out.join("fig11_urbanization.csv"), &report::urbanization_csv(&urb));
    let ratios = mean_volume_ratios(&urb);
    let r2s = mean_temporal_r2(&urb);
    println!(
        "fig11 top: mean volume ratios semi-urban {:.2} (paper ≈1), rural {:.2} (paper ≈0.5), tgv {:.2} (paper ≥2)",
        ratios[1], ratios[2], ratios[3]
    );
    println!(
        "fig11 bottom: mean temporal r² urban {:.2} / semi {:.2} / rural {:.2} vs tgv {:.2} (paper: tgv stands apart)",
        r2s[0], r2s[1], r2s[2], r2s[3]
    );

    // Extensions beyond the paper's evaluation.
    let forecast = mobilenet_core::forecast::forecast_report(&study, Direction::Down, 120);
    write(&args.out.join("ext_forecast.csv"), &report::forecast_csv(&forecast));
    let median_smape = {
        let mut v: Vec<f64> = forecast.iter().map(|f| f.holt_winters.smape).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    println!(
        "ext: Holt-Winters 2-day-ahead median sMAPE {:.2} (service traffic is highly predictable, cf. [15])",
        median_smape
    );
    let twitter_moran = mobilenet_core::spatial::morans_i(
        study.country(),
        &study.dataset().per_user_commune_vector(Direction::Down, twitter),
        6,
    );
    println!(
        "ext: Moran's I of the per-user Twitter map {:.2} (spatially clustered demand, Figure 9)",
        twitter_moran
    );

    // The programmatic paper-vs-measured verdict table.
    let claims = mobilenet_core::verdict::evaluate(&study);
    let table = mobilenet_core::verdict::verdict_table(&claims);
    write(&args.out.join("verdict.txt"), &table);
    println!("\n{table}");

    // Full observability report (generation + every analysis span above).
    if let Some(path) = args.obs.clone().or_else(mobilenet_obs::env_output_path) {
        mobilenet_obs::write_json(&path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("  wrote {}", path.display());
    }

    println!("all figures written to {}", args.out.display());
}

fn short(dir: Direction) -> &'static str {
    match dir {
        Direction::Down => "dl",
        Direction::Up => "ul",
    }
}
