//! Deterministic parallel execution layer for the mobilenet workspace.
//!
//! Every hot path in the pipeline (session synthesis, cube aggregation,
//! pairwise correlation, clustering sweeps) is an *embarrassingly ordered*
//! problem: a fixed list of independent work items whose results must be
//! combined in submission order so output is bit-identical regardless of
//! how many threads ran. This crate provides exactly that and nothing
//! more, on `std` alone:
//!
//! - [`par_map_collect`] — run `f(0..n)` across a scoped worker pool,
//!   dynamically chunked, results reassembled **in index order**;
//! - [`par_map`] — the same over a slice;
//! - [`par_map_reduce`] — ordered reduction: partials are folded strictly
//!   left-to-right in submission order, so even non-associative-in-
//!   practice operations (floating-point `+`) give one canonical answer;
//! - [`seed_for`] — splitmix-style derivation of independent per-shard
//!   RNG stream seeds from a master seed, so shard *i* draws the same
//!   stream whether it runs first, last, serial, or parallel;
//! - [`Pool`] and the `MOBILENET_THREADS` environment override (plus
//!   [`set_thread_override`] for tests and CLI flags).
//!
//! Workers are `std::thread::scope` threads spawned per parallel region;
//! a region with one worker or one item never spawns at all and runs the
//! caller's closures inline. Determinism therefore never depends on the
//! pool: threads race only over *which* worker computes an item, never
//! over where its result lands.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Name of the environment variable overriding the worker count.
pub const THREADS_ENV: &str = "MOBILENET_THREADS";

/// Process-wide runtime override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached resolution of `MOBILENET_THREADS` / available parallelism.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

fn default_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| {
        match std::env::var(THREADS_ENV) {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => available_parallelism(),
            },
            Err(_) => available_parallelism(),
        }
    })
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Forces the worker count for subsequent parallel regions, taking
/// precedence over `MOBILENET_THREADS`; `None` restores the default.
///
/// Process-global: intended for CLI `--threads` flags and for tests that
/// exercise the same computation at several thread counts.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// The worker count the next parallel region will use: the
/// [`set_thread_override`] value if set, else `MOBILENET_THREADS`, else
/// the machine's available parallelism.
pub fn current_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::SeqCst) {
        0 => default_threads(),
        n => n,
    }
}

/// A handle fixing the worker count for a series of parallel regions.
///
/// [`Pool::global`] re-reads the ambient configuration on every call, so
/// constructing one is free; holding a `Pool` pins the count it resolved.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
    min_items_per_worker: usize,
}

impl Pool {
    /// A pool with an explicit worker count (minimum 1).
    pub fn new(threads: usize) -> Self {
        Pool { threads: threads.max(1), min_items_per_worker: 1 }
    }

    /// A pool using the ambient configuration (see [`current_threads`]).
    pub fn global() -> Self {
        Pool::new(current_threads())
    }

    /// Sets the serial-fallback work threshold: a region spawns at most
    /// `n / min_items` workers, so each worker has at least `min_items`
    /// items to amortize its spawn cost against — below `2 × min_items`
    /// total the region runs inline on the caller's thread. The default
    /// of 1 keeps historical behavior (spawn whenever `n > 1`).
    ///
    /// Output is unaffected: worker count never changes results, only
    /// where they are computed.
    pub fn with_min_items_per_worker(mut self, min_items: usize) -> Self {
        self.min_items_per_worker = min_items.max(1);
        self
    }

    /// This pool's worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The serial-fallback threshold (see
    /// [`Pool::with_min_items_per_worker`]).
    pub fn min_items_per_worker(&self) -> usize {
        self.min_items_per_worker
    }

    /// Maps `f` over `0..n` on this pool; results in index order.
    ///
    /// When observability is enabled ([`mobilenet_obs::enabled`]) the
    /// region records `par.regions` / `par.items` / `par.worker_items`
    /// counters (totals, identical at any thread count), the
    /// `par.workers` gauge, and per-worker `par/worker_wait` (spawn
    /// latency) and `par/worker_busy` spans. Worker-level timing lives in
    /// the span section, which is excluded from the determinism
    /// fingerprint because scheduling shapes it.
    pub fn map_collect<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.min(n).min(n / self.min_items_per_worker);
        let observing = mobilenet_obs::enabled();
        if observing {
            mobilenet_obs::add("par.regions", 1);
            mobilenet_obs::add("par.items", n as u64);
            mobilenet_obs::gauge("par.workers", workers.max(1) as f64);
        }
        if workers <= 1 {
            if observing {
                mobilenet_obs::add("par.worker_items", n as u64);
            }
            return (0..n).map(f).collect();
        }
        // One slot per item: workers race over which item they pick up
        // (dynamic chunking amortizes the atomic), never over where a
        // result lands, so reassembly is exact submission order.
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let chunk = n.div_ceil(workers * 4).max(1);
        let region_start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let spawned = std::time::Instant::now();
                    let mut processed = 0u64;
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for (i, slot) in
                            slots.iter().enumerate().take(n.min(start + chunk)).skip(start)
                        {
                            let result = f(i);
                            *slot.lock().expect("result slot poisoned") = Some(result);
                            processed += 1;
                        }
                    }
                    if observing {
                        // The per-worker item split is scheduling-dependent;
                        // only the total (always exactly `n`) is counted.
                        mobilenet_obs::add("par.worker_items", processed);
                        let wait = spawned.duration_since(region_start);
                        mobilenet_obs::record_span_ns("par/worker_wait", wait.as_nanos() as u64);
                        mobilenet_obs::record_span_ns(
                            "par/worker_busy",
                            spawned.elapsed().as_nanos() as u64,
                        );
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("result slot poisoned").expect("slot filled by scope end")
            })
            .collect()
    }

    /// Maps `f` over a slice on this pool; results in element order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_collect(items.len(), |i| f(&items[i]))
    }

    /// Maps `f` over `0..n` on this pool, then folds the partial results
    /// **strictly left-to-right in submission order** — the canonical
    /// order that makes floating-point accumulation thread-count-proof.
    pub fn map_reduce<R, A, F, G>(&self, n: usize, f: F, init: A, mut fold: G) -> A
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
        G: FnMut(A, R) -> A,
    {
        self.map_collect(n, f).into_iter().fold(init, &mut fold)
    }
}

/// [`Pool::map_collect`] on the ambient pool: `f` over `0..n`, results in
/// index order.
pub fn par_map_collect<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    Pool::global().map_collect(n, f)
}

/// [`Pool::map`] on the ambient pool: `f` over a slice, results in
/// element order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    Pool::global().map(items, f)
}

/// [`Pool::map_collect`] on the ambient pool with a serial-fallback work
/// threshold: spawns only workers that will each process at least
/// `min_items` items, running tiny regions inline (see
/// [`Pool::with_min_items_per_worker`]).
pub fn par_map_collect_min<R, F>(n: usize, min_items: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    Pool::global().with_min_items_per_worker(min_items).map_collect(n, f)
}

/// [`Pool::map`] on the ambient pool with a serial-fallback work
/// threshold: spawns only workers that will each process at least
/// `min_items` slice elements, running tiny inputs inline (see
/// [`Pool::with_min_items_per_worker`]).
pub fn par_map_min<T, R, F>(items: &[T], min_items: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    Pool::global().with_min_items_per_worker(min_items).map(items, f)
}

/// [`Pool::map_reduce`] on the ambient pool: ordered fold of mapped
/// partials, strictly left-to-right in submission order.
pub fn par_map_reduce<R, A, F, G>(n: usize, f: F, init: A, fold: G) -> A
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    Pool::global().map_reduce(n, f, init, fold)
}

/// Derives the RNG stream seed for shard `stream` of a computation keyed
/// by `master`.
///
/// SplitMix64-style finalization over the (master, stream) pair: every
/// shard gets a well-separated stream, and the derivation depends only on
/// the pair — never on which worker runs the shard or in what order — so
/// sharded generation is bit-identical to serial generation.
pub fn seed_for(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xA24B_AED4_963E_E407));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_submission_order() {
        for threads in [1, 2, 3, 8, 32] {
            let pool = Pool::new(threads);
            let out = pool.map_collect(1000, |i| i * i);
            assert_eq!(out.len(), 1000);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * i, "threads = {threads}");
            }
        }
    }

    #[test]
    fn map_matches_serial_iteration() {
        let items: Vec<f64> = (0..500).map(|i| i as f64 * 0.37).collect();
        let serial: Vec<f64> = items.iter().map(|v| v.sin()).collect();
        for threads in [1, 2, 8] {
            assert_eq!(Pool::new(threads).map(&items, |v| v.sin()), serial);
        }
    }

    #[test]
    fn map_reduce_is_bitwise_stable_across_thread_counts() {
        // Summing many magnitudes in varying order would differ in the
        // last ulp; the ordered fold must not.
        let reference = Pool::new(1).map_reduce(
            2000,
            |i| (i as f64 + 0.1).exp().recip() * 1e6,
            0.0f64,
            |a, b| a + b,
        );
        for threads in [2, 5, 16] {
            let sum = Pool::new(threads).map_reduce(
                2000,
                |i| (i as f64 + 0.1).exp().recip() * 1e6,
                0.0f64,
                |a, b| a + b,
            );
            assert_eq!(sum.to_bits(), reference.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let empty: Vec<u32> = Pool::new(8).map_collect(0, |_| unreachable!("no items"));
        assert!(empty.is_empty());
        assert_eq!(Pool::new(8).map_collect(1, |i| i + 41), vec![41]);
        assert_eq!(par_map(&[] as &[u8], |_| 0u8), Vec::<u8>::new());
    }

    #[test]
    fn seed_for_separates_streams_and_ignores_scheduling() {
        let a: Vec<u64> = (0..100).map(|s| seed_for(7, s)).collect();
        let b: Vec<u64> = (0..100).rev().map(|s| seed_for(7, s)).collect();
        // Same (master, stream) pair -> same seed, regardless of order.
        assert!(a.iter().eq(b.iter().rev()));
        // Distinct streams and distinct masters give distinct seeds.
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len());
        assert_ne!(seed_for(7, 3), seed_for(8, 3));
        assert_ne!(seed_for(7, 3), seed_for(7, 4));
    }

    #[test]
    fn min_items_threshold_matches_parallel_results() {
        // Threshold-sized and sub-threshold inputs must produce exactly
        // the unthresholded pool's output at every thread count — the
        // fallback only moves work inline, never changes it.
        let work = |i: usize| ((i as f64 + 0.3).sin() * 1e6, i * 7);
        for n in [0usize, 1, 31, 32, 33, 64, 257] {
            let reference = Pool::new(1).map_collect(n, work);
            for threads in [1, 2, 8] {
                for min_items in [1usize, 32, 1000] {
                    let out = Pool::new(threads)
                        .with_min_items_per_worker(min_items)
                        .map_collect(n, work);
                    assert_eq!(out, reference, "n={n} threads={threads} min={min_items}");
                }
            }
            assert_eq!(par_map_collect_min(n, 32, work), reference, "n={n} free fn");
        }
    }

    #[test]
    fn slice_min_items_threshold_matches_parallel_results() {
        // The slice-input twin of the threshold guarantee: par_map_min
        // must equal par_map for every input size and threshold.
        let work = |x: &f64| (x.sin() * 1e6, x.to_bits());
        for n in [0usize, 1, 31, 190, 257] {
            let items: Vec<f64> = (0..n).map(|i| i as f64 + 0.3).collect();
            let reference = Pool::new(1).map(&items, work);
            for min_items in [1usize, 32, 256, 1000] {
                assert_eq!(par_map_min(&items, min_items, work), reference, "n={n} min={min_items}");
            }
        }
    }

    #[test]
    fn min_items_gates_worker_spawning() {
        // n / min_items bounds the workers: below 2×min_items the region
        // must degrade to exactly one (inline) worker.
        let pool = Pool::new(8).with_min_items_per_worker(32);
        assert_eq!(pool.min_items_per_worker(), 32);
        let workers = |n: usize| pool.threads().min(n).min(n / pool.min_items_per_worker());
        assert_eq!(workers(20), 0); // inline path
        assert_eq!(workers(64), 2); // two workers
        // Default keeps historical behavior.
        assert_eq!(Pool::new(8).min_items_per_worker(), 1);
    }

    #[test]
    fn pool_respects_runtime_override() {
        set_thread_override(Some(3));
        assert_eq!(current_threads(), 3);
        assert_eq!(Pool::global().threads(), 3);
        set_thread_override(None);
        assert!(current_threads() >= 1);
    }

    #[test]
    fn panics_in_workers_propagate() {
        let caught = std::panic::catch_unwind(|| {
            Pool::new(4).map_collect(100, |i| {
                if i == 57 {
                    panic!("worker failure");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}
