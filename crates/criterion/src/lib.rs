//! Workspace-internal stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace's
//! `harness = false` benches link against this minimal re-implementation:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Timing is plain wall-clock: each benchmark is calibrated to a
//! small time budget, run `sample_size` times, and reported as the
//! per-iteration median, mean, and minimum on stdout. There is no
//! statistical regression machinery and no HTML report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget each sample is calibrated to occupy.
const SAMPLE_BUDGET: Duration = Duration::from_millis(25);

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark under this group's name.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, routine);
        self
    }

    /// Runs one parameterized benchmark, passing `input` to the routine.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| routine(b, input));
        self
    }

    /// Ends the group. (Reporting is immediate, so this is a no-op.)
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// A bare parameter value as the benchmark name.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Conversion accepted by [`BenchmarkGroup::bench_function`], which takes
/// either a string name or a full [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Renders the identifier's display label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

/// Timer handle passed to benchmark routines; call [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running it enough iterations per sample to get a
    /// stable per-iteration estimate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: double the iteration count until one sample fills
        // the budget (bounded so pathological cases still terminate).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_BUDGET || iters >= 1 << 20 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 8
            } else {
                let scale = SAMPLE_BUDGET.as_secs_f64() / elapsed.as_secs_f64();
                (iters as f64 * scale.clamp(1.1, 8.0)).ceil() as u64
            };
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut routine: F) {
    let mut bencher =
        Bencher { iters_per_sample: 0, samples: Vec::with_capacity(sample_size), sample_size };
    routine(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<48} (no measurement: routine never called Bencher::iter)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{label:<48} median {} | mean {} | min {} ({} samples x {} iters)",
        format_duration(median),
        format_duration(mean),
        format_duration(min),
        sorted.len(),
        bencher.iters_per_sample,
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        c.bench_function("spin_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group!(smoke, spin);

    #[test]
    fn groups_and_benches_run() {
        smoke();
        let mut c = Criterion::default().sample_size(5);
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.bench_with_input(BenchmarkId::from_parameter(9), &9u64, |b, &n| {
            b.iter(|| n + 1)
        });
        g.finish();
    }
}
