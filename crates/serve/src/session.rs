//! Per-connection protocol sessions.
//!
//! A [`Session`] is what one TCP connection holds between requests: the
//! registry it speaks for and the study it has `USE`d. Session verbs
//! (`HELLO`/`LIST`/`USE`/`START`) and the study-resolution rule live
//! here so the server loop stays a pure framing/IO concern.
//!
//! **Study resolution:** a query or `SUBSCRIBE` needs a selected study.
//! If the connection never sent `USE` and exactly one study is
//! registered, that study is selected implicitly — the v1-compatible
//! path. With several studies registered, an explicit `USE` is
//! required.

use std::sync::Arc;

use mobilenet_core::DEFAULT_SEED;

use crate::query::PROTOCOL_VERSION;
use crate::registry::{StudyEntry, StudyRegistry};
use crate::subscribe::{Subscriber, Topic};

/// The verbs this server understands, in grammar order — the `HELLO`
/// capability list.
pub const CAPABILITIES: &str = "HELLO LIST USE START SUBSCRIBE RANK R2 PEAKS SERIES AUTOCORR \
                                WATERMARK STATS DATASET HEALTH QUIT SHUTDOWN";

/// One connection's protocol state: the registry plus the selected
/// study.
pub struct Session {
    registry: Arc<StudyRegistry>,
    study: Option<Arc<StudyEntry>>,
}

impl Session {
    /// A fresh session with no study selected.
    pub fn new(registry: Arc<StudyRegistry>) -> Session {
        Session { registry, study: None }
    }

    /// The registry this session speaks for.
    pub fn registry(&self) -> &Arc<StudyRegistry> {
        &self.registry
    }

    /// `HELLO`: protocol version, capabilities and study count.
    pub fn hello(&self) -> Vec<String> {
        vec![
            PROTOCOL_VERSION.to_string(),
            format!("capabilities {CAPABILITIES}"),
            format!("studies {}", self.registry.len()),
        ]
    }

    /// `LIST`: one body line per registered study.
    pub fn list(&self) -> Vec<String> {
        self.registry.list().iter().map(|info| info.protocol_line()).collect()
    }

    /// `USE <study>`: selects a study for this connection; the body
    /// echoes its info line.
    pub fn use_study(&mut self, name: &str) -> Result<Vec<String>, String> {
        let entry = self
            .registry
            .get(name)
            .ok_or_else(|| format!("unknown study {name} (try LIST)"))?;
        let line = entry.info().protocol_line();
        self.study = Some(entry);
        Ok(vec![line])
    }

    /// `START <study> <scale> [seed [weeks]]`: registers a new study,
    /// starts its ingestion, and selects it for this connection.
    pub fn start(
        &mut self,
        name: &str,
        scale: &str,
        seed: Option<u64>,
        weeks: Option<usize>,
    ) -> Result<Vec<String>, String> {
        let entry = self.registry.register_scale(
            name,
            scale,
            seed.unwrap_or(DEFAULT_SEED),
            weeks.unwrap_or(1),
        )?;
        self.registry.start(&entry)?;
        let line = entry.info().protocol_line();
        self.study = Some(entry);
        Ok(vec![line])
    }

    /// The study this connection operates on: the `USE`d one, or the
    /// implicit single registered study.
    pub fn current(&mut self) -> Result<Arc<StudyEntry>, String> {
        if let Some(entry) = &self.study {
            return Ok(entry.clone());
        }
        match self.registry.single() {
            Some(entry) => {
                self.study = Some(entry.clone());
                Ok(entry)
            }
            None if self.registry.is_empty() => {
                Err("no study registered (START one)".to_string())
            }
            None => Err("several studies registered; USE one (try LIST)".to_string()),
        }
    }

    /// `SUBSCRIBE <topics>`: registers a subscription on the selected
    /// study and returns it with its hub entry for the streaming loop.
    pub fn subscribe(
        &mut self,
        topics: Vec<Topic>,
    ) -> Result<(Arc<StudyEntry>, Arc<Subscriber>), String> {
        let entry = self.current()?;
        let sub = entry.hub().subscribe(topics);
        Ok((entry, sub))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobilenet_core::StudyConfig;

    #[test]
    fn sessions_auto_select_a_single_study_and_demand_use_with_several() {
        let registry = StudyRegistry::new();
        let mut session = Session::new(registry.clone());
        assert_eq!(session.hello()[0], PROTOCOL_VERSION);
        let err = session.current().unwrap_err();
        assert!(err.contains("no study"), "unexpected message {err:?}");

        let config = StudyConfig::small();
        registry.register_config("alpha", "small", &config, 1, 1).unwrap();
        assert_eq!(session.current().unwrap().name(), "alpha", "single study auto-selects");

        registry.register_config("beta", "small", &config, 2, 1).unwrap();
        let mut fresh = Session::new(registry.clone());
        let err = fresh.current().unwrap_err();
        assert!(err.contains("USE one"), "unexpected message {err:?}");
        fresh.use_study("beta").unwrap();
        assert_eq!(fresh.current().unwrap().name(), "beta");
        assert!(fresh.use_study("gamma").is_err());

        // The earlier session keeps its implicit selection.
        assert_eq!(session.current().unwrap().name(), "alpha");
        assert_eq!(session.list().len(), 2);
        registry.shutdown();
    }
}
