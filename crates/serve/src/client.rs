//! A typed client for the `mobilenet-serve/v2` protocol.
//!
//! [`Client`] owns one protocol connection and types the wire framing:
//! [`request`](Client::request) handles the `OK <n>`/`ERR` envelope,
//! [`hello`](Client::hello)/[`list`](Client::list)/
//! [`use_study`](Client::use_study) parse their bodies into
//! [`Hello`]/[`StudyInfo`], and [`subscribe`](Client::subscribe) turns
//! the connection into a [`Subscription`] — an iterator over decoded
//! [`DeltaEvent`]s that finishes at the stream's `end` event and hands
//! the connection back for further requests. The CLI `query`/`watch`
//! subcommands and the CI smoke are built on this type; nothing else in
//! the workspace parses protocol lines by hand.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::query::PROTOCOL_VERSION;
use crate::registry::StudyInfo;
use crate::subscribe::{DeltaEvent, Topic};

/// Why a client call failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The transport failed (connect, read or write).
    Io(io::Error),
    /// The server answered `ERR <message>`.
    Server(String),
    /// The server's bytes did not parse as protocol framing.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// The server's `HELLO` handshake, parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Hello {
    /// Protocol version token (e.g. `mobilenet-serve/v2`).
    pub version: String,
    /// Verbs the server understands.
    pub capabilities: Vec<String>,
    /// Studies currently registered.
    pub studies: usize,
}

/// One protocol connection with typed request/response parsing.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a serve endpoint (`host:port`).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, writer: stream })
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        while line.ends_with(['\n', '\r']) {
            line.pop();
        }
        Ok(line)
    }

    /// Sends one raw request line and parses the `OK <n>`/`ERR` envelope
    /// into the body lines. The workhorse behind every typed call; also
    /// public for verbs without a dedicated wrapper (`RANK dl 5`, ...).
    pub fn request(&mut self, line: &str) -> Result<Vec<String>, ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let head = self.read_line()?;
        if let Some(msg) = head.strip_prefix("ERR ") {
            return Err(ClientError::Server(msg.to_string()));
        }
        let n = head
            .strip_prefix("OK ")
            .and_then(|n| n.parse::<usize>().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad response head {head:?}")))?;
        let mut body = Vec::with_capacity(n);
        for _ in 0..n {
            body.push(self.read_line()?);
        }
        Ok(body)
    }

    /// `HELLO`: the version/capability handshake. Errors if the server
    /// speaks a different protocol version.
    pub fn hello(&mut self) -> Result<Hello, ClientError> {
        let body = self.request("HELLO")?;
        let version = body
            .first()
            .cloned()
            .ok_or_else(|| ClientError::Protocol("empty HELLO body".into()))?;
        if version != PROTOCOL_VERSION {
            return Err(ClientError::Protocol(format!(
                "server speaks {version}, this client speaks {PROTOCOL_VERSION}"
            )));
        }
        let mut capabilities = Vec::new();
        let mut studies = 0;
        for line in &body[1..] {
            if let Some(caps) = line.strip_prefix("capabilities ") {
                capabilities = caps.split_whitespace().map(str::to_string).collect();
            } else if let Some(n) = line.strip_prefix("studies ") {
                studies = n
                    .parse()
                    .map_err(|_| ClientError::Protocol(format!("bad study count {n:?}")))?;
            }
        }
        Ok(Hello { version, capabilities, studies })
    }

    /// `LIST`: every registered study's description.
    pub fn list(&mut self) -> Result<Vec<StudyInfo>, ClientError> {
        self.request("LIST")?
            .iter()
            .map(|line| StudyInfo::parse(line).map_err(ClientError::Protocol))
            .collect()
    }

    /// `USE <study>`: selects a study for this connection.
    pub fn use_study(&mut self, name: &str) -> Result<StudyInfo, ClientError> {
        let body = self.request(&format!("USE {name}"))?;
        let line = body
            .first()
            .ok_or_else(|| ClientError::Protocol("empty USE body".into()))?;
        StudyInfo::parse(line).map_err(ClientError::Protocol)
    }

    /// `START <study> <scale> [seed [weeks]]`: registers, starts and
    /// selects a new study.
    pub fn start(
        &mut self,
        name: &str,
        scale: &str,
        seed: Option<u64>,
        weeks: Option<usize>,
    ) -> Result<StudyInfo, ClientError> {
        let mut line = format!("START {name} {scale}");
        if let Some(seed) = seed {
            line.push_str(&format!(" {seed}"));
            if let Some(weeks) = weeks {
                line.push_str(&format!(" {weeks}"));
            }
        } else if weeks.is_some() {
            return Err(ClientError::Protocol(
                "START cannot carry weeks without an explicit seed".into(),
            ));
        }
        let body = self.request(&line)?;
        let info = body
            .first()
            .ok_or_else(|| ClientError::Protocol("empty START body".into()))?;
        StudyInfo::parse(info).map_err(ClientError::Protocol)
    }

    /// `SUBSCRIBE <topics>`: switches the connection into event mode and
    /// returns the event iterator. Iterate it to completion (its `end`
    /// event) to get the connection back for further requests.
    pub fn subscribe(&mut self, topics: Vec<Topic>) -> Result<Subscription<'_>, ClientError> {
        if topics.is_empty() {
            return Err(ClientError::Protocol("SUBSCRIBE needs at least one topic".into()));
        }
        let tokens: Vec<&str> = topics.iter().map(|t| t.token()).collect();
        self.request(&format!("SUBSCRIBE {}", tokens.join(",")))?;
        Ok(Subscription { client: self, done: false })
    }

    /// `SHUTDOWN`: stops the server (and consumes this client — the
    /// server hangs up after acknowledging).
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        self.request("SHUTDOWN")?;
        Ok(())
    }

    /// `QUIT`: closes the connection politely (no response expected).
    pub fn quit(mut self) -> Result<(), ClientError> {
        writeln!(self.writer, "QUIT")?;
        self.writer.flush()?;
        Ok(())
    }
}

/// An active `SUBSCRIBE` stream: iterates `(seq, event)` pairs until the
/// stream's `end` event (after which the underlying [`Client`] is usable
/// again). A gap in `seq` means the subscriber lagged and events were
/// dropped (`serve.subscriber_lagged` on the server side).
pub struct Subscription<'a> {
    client: &'a mut Client,
    done: bool,
}

impl Iterator for Subscription<'_> {
    type Item = Result<(u64, DeltaEvent), ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let line = match self.client.read_line() {
            Ok(line) => line,
            Err(e) => {
                // Transport loss (e.g. server shutdown mid-stream) ends
                // the iteration after surfacing the error once.
                self.done = true;
                return Some(Err(e));
            }
        };
        let parsed = (|| {
            let rest = line
                .strip_prefix("EVENT ")
                .ok_or_else(|| ClientError::Protocol(format!("bad event line {line:?}")))?;
            let (seq, payload) = rest
                .split_once(' ')
                .ok_or_else(|| ClientError::Protocol(format!("bad event line {line:?}")))?;
            let seq = seq
                .parse::<u64>()
                .map_err(|_| ClientError::Protocol(format!("bad event seq {seq:?}")))?;
            let event = DeltaEvent::parse_wire(payload).map_err(ClientError::Protocol)?;
            Ok((seq, event))
        })();
        match parsed {
            Ok((seq, event)) => {
                if matches!(event, DeltaEvent::End { .. }) {
                    self.done = true;
                }
                Some(Ok((seq, event)))
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}
