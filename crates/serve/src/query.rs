//! Snapshot queries, session verbs and the line protocol they travel
//! over.
//!
//! # Protocol grammar (`mobilenet-serve/v2`)
//!
//! One request per line, case-insensitive verb, space-separated operands;
//! `<dir>` is `dl` or `ul`:
//!
//! ```text
//! request   = session | query | "QUIT" | "SHUTDOWN"
//! session   = "HELLO"                   ; protocol version + capabilities
//!           | "LIST"                    ; registered studies
//!           | "USE" study               ; select a study for this connection
//!           | "START" study scale [seed [weeks]]
//!                                       ; register + start a study (admin)
//!           | "SUBSCRIBE" topics        ; stream framed delta events
//! query     = "RANK" dir k              ; top-k service ranking, 1 <= k <= |head|
//!           | "R2" dir                  ; pairwise spatial correlation
//!           | "PEAKS" dir               ; topical peak profiles
//!           | "SERIES" dir service      ; national hourly series up to the watermark
//!           | "AUTOCORR" dir [lag]      ; hour-lag autocorrelation (default lag 24)
//!           | "WATERMARK"               ; frontier / completeness / version / week
//!           | "STATS"                   ; ingestion accounting
//!           | "DATASET"                 ; full dataset CSV (batch-export format)
//!           | "HEALTH"                  ; serve.* + netsim.ingest.* obs metrics
//! topics    = "all" | topic *("," topic)
//! topic     = "watermark" | "version" | "rank" | "autocorr"
//! dir       = "dl" | "ul"
//! ```
//!
//! Responses are framed as `OK <n>` followed by exactly `n` body lines,
//! or a single `ERR <message>` line; parse errors use the unified shape
//! `ERR bad <verb>: <token> (expected ...)` so clients can surface the
//! offending token. `QUIT` closes the connection (without a response);
//! `SHUTDOWN` additionally stops the server — including any connection
//! that is mid-`SUBSCRIBE`.
//!
//! `SUBSCRIBE` answers `OK 0` and then switches the connection to event
//! framing: one `EVENT <seq> <payload>` line per delta (payload codec in
//! [`crate::subscribe::DeltaEvent`]), terminated by an `end` event after
//! which the connection returns to command mode. `<seq>` is a
//! per-subscription counter that *advances on drops*, so a gap tells the
//! client it lagged (see `serve.subscriber_lagged`).
//!
//! Queries need a selected study: connections start on the only
//! registered study when there is exactly one (the v1-compatible case)
//! and otherwise must `USE` one first.
//!
//! Floating-point values render with `{:e}` — the trace/CSV notation the
//! rest of the workspace round-trips — so two bit-identical snapshots
//! produce byte-identical responses. `DATASET` bodies are exactly
//! [`TrafficDataset::to_csv`](mobilenet_traffic::TrafficDataset), which
//! is what lets the CI smoke test `cmp` a live dump against a batch
//! export.

use mobilenet_core::peaks::PeakConfig;
use mobilenet_core::{spatial_correlation_of, top_k_services, topical_profiles_of};
use mobilenet_traffic::Direction;

use crate::live::{LiveSnapshot, LiveState};
use crate::subscribe::{Topic, AUTOCORR_LAG_HOURS};

/// The protocol version `HELLO` reports. Bump when the grammar changes
/// incompatibly.
pub const PROTOCOL_VERSION: &str = "mobilenet-serve/v2";

/// A read-only question about the current live aggregate.
///
/// `#[non_exhaustive]`: new query kinds are non-breaking; construct via
/// the enum variants or [`SnapshotQuery::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotQuery {
    /// Top-`k` head services by share of total volume.
    Ranking {
        /// Direction ranked.
        dir: Direction,
        /// How many services to return.
        k: usize,
    },
    /// Pairwise spatial correlation (mean + per-service means).
    PairwiseR2 {
        /// Direction correlated.
        dir: Direction,
    },
    /// Topical peak profile of every head service.
    Peaks {
        /// Direction profiled.
        dir: Direction,
    },
    /// One service's national hourly series up to the watermark.
    Series {
        /// Direction read.
        dir: Direction,
        /// Head-service index.
        service: usize,
    },
    /// Hour-lag autocorrelation of the head services' national series
    /// over the observed window (the subscription statistic, on demand).
    Autocorr {
        /// Direction measured.
        dir: Direction,
        /// Hour lag (`AUTOCORR` defaults this to 24, the diurnal period).
        lag: usize,
    },
    /// Observed frontier, completeness, state version and week position.
    Watermark,
    /// Streaming-engine accounting.
    Stats,
    /// The full dataset in batch-export CSV format.
    Dataset,
    /// Health endpoint: the `serve.*` / `netsim.ingest.*` slice of the
    /// observability registry.
    Health,
}

/// One parsed protocol line: a session verb, a query, or a
/// connection-control verb.
///
/// `#[non_exhaustive]`: new verbs are non-breaking; construct via
/// [`Command::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Command {
    /// Protocol version + capability handshake.
    Hello,
    /// Enumerate registered studies.
    List,
    /// Select a study for this connection.
    Use(String),
    /// Register and start a new study.
    Start {
        /// Registry name for the new study.
        name: String,
        /// Scale tier token (`small`/`medium`/`france`/`national`).
        scale: String,
        /// Demand-model seed (registry default when absent).
        seed: Option<u64>,
        /// Weeks to fold through the ring (default 1).
        weeks: Option<usize>,
    },
    /// Stream delta events for the selected topics.
    Subscribe(Vec<Topic>),
    /// Answer a snapshot query.
    Query(SnapshotQuery),
    /// Close this connection.
    Quit,
    /// Close this connection and stop the server.
    Shutdown,
}

/// Parses a wire direction token (`dl`/`ul`).
pub fn parse_dir(token: &str) -> Result<Direction, String> {
    match token.to_ascii_lowercase().as_str() {
        "dl" => Ok(Direction::Down),
        "ul" => Ok(Direction::Up),
        other => Err(format!("{other} (expected dl or ul)")),
    }
}

/// The wire token of a direction (inverse of [`parse_dir`]).
pub fn dir_token(dir: Direction) -> &'static str {
    match dir {
        Direction::Down => "dl",
        Direction::Up => "ul",
    }
}

/// Pearson autocorrelation of `series` at `lag` hours: the correlation
/// between the series and itself shifted by `lag`. `None` when the
/// series is shorter than `lag + 2` points or either window is
/// constant (no defined correlation) — never NaN.
///
/// This is the Jo-style handset-usage temporal statistic (PAPERS.md):
/// at lag 24 it measures how faithfully a service repeats its diurnal
/// rhythm day over day.
pub fn hour_lag_autocorr(series: &[f64], lag: usize) -> Option<f64> {
    if lag == 0 || series.len() < lag + 2 {
        return None;
    }
    let n = series.len() - lag;
    let lead = &series[..n];
    let shifted = &series[lag..];
    let mean_lead = lead.iter().sum::<f64>() / n as f64;
    let mean_shift = shifted.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut var_lead = 0.0;
    let mut var_shift = 0.0;
    for i in 0..n {
        let da = lead[i] - mean_lead;
        let db = shifted[i] - mean_shift;
        cov += da * db;
        var_lead += da * da;
        var_shift += db * db;
    }
    if var_lead == 0.0 || var_shift == 0.0 {
        return None;
    }
    Some(cov / (var_lead * var_shift).sqrt())
}

impl SnapshotQuery {
    /// Parses one protocol line into a query (see the module docs for
    /// the grammar). Session and connection-control verbs are rejected
    /// here; use [`Command::parse`] when speaking the full protocol.
    pub fn parse(line: &str) -> Result<SnapshotQuery, String> {
        match Command::parse(line)? {
            Command::Query(q) => Ok(q),
            other => Err(format!("{other:?} is not a snapshot query")),
        }
    }
}

impl Command {
    /// Parses one protocol line. Errors carry the offending token in the
    /// unified `bad <verb>: <token> (expected ...)` shape.
    pub fn parse(line: &str) -> Result<Command, String> {
        let mut tokens = line.split_whitespace();
        let verb = tokens
            .next()
            .ok_or_else(|| "bad request: empty line (expected a verb)".to_string())?
            .to_ascii_uppercase();
        let mut operand = |name: &str| {
            tokens
                .next()
                .ok_or_else(|| format!("bad {verb}: missing {name}"))
        };
        let cmd = match verb.as_str() {
            "HELLO" => Command::Hello,
            "LIST" => Command::List,
            "USE" => Command::Use(operand("<study>")?.to_string()),
            "START" => {
                let name = operand("<study>")?.to_string();
                let scale = operand("<scale>")?.to_string();
                let seed = match tokens.next() {
                    None => None,
                    Some(t) => Some(t.parse::<u64>().map_err(|_| {
                        format!("bad START: {t} (expected an integer seed)")
                    })?),
                };
                let weeks = match tokens.next() {
                    None => None,
                    Some(t) => Some(t.parse::<usize>().map_err(|_| {
                        format!("bad START: {t} (expected an integer week count)")
                    })?),
                };
                Command::Start { name, scale, seed, weeks }
            }
            "SUBSCRIBE" => Command::Subscribe(Topic::parse_list(operand("<topics>")?)?),
            "RANK" => {
                let dir = operand("<dir> <k>")
                    .and_then(|t| parse_dir(t).map_err(|e| format!("bad RANK: {e}")))?;
                let k = operand("<dir> <k>").and_then(|t| {
                    t.parse::<usize>()
                        .map_err(|_| format!("bad RANK: {t} (expected an integer k)"))
                })?;
                Command::Query(SnapshotQuery::Ranking { dir, k })
            }
            "R2" => Command::Query(SnapshotQuery::PairwiseR2 {
                dir: operand("<dir>")
                    .and_then(|t| parse_dir(t).map_err(|e| format!("bad R2: {e}")))?,
            }),
            "PEAKS" => Command::Query(SnapshotQuery::Peaks {
                dir: operand("<dir>")
                    .and_then(|t| parse_dir(t).map_err(|e| format!("bad PEAKS: {e}")))?,
            }),
            "SERIES" => {
                let dir = operand("<dir> <service>")
                    .and_then(|t| parse_dir(t).map_err(|e| format!("bad SERIES: {e}")))?;
                let service = operand("<dir> <service>").and_then(|t| {
                    t.parse::<usize>()
                        .map_err(|_| format!("bad SERIES: {t} (expected a service index)"))
                })?;
                Command::Query(SnapshotQuery::Series { dir, service })
            }
            "AUTOCORR" => {
                let dir = operand("<dir> [lag]")
                    .and_then(|t| parse_dir(t).map_err(|e| format!("bad AUTOCORR: {e}")))?;
                let lag = match tokens.next() {
                    None => AUTOCORR_LAG_HOURS,
                    Some(t) => t.parse::<usize>().map_err(|_| {
                        format!("bad AUTOCORR: {t} (expected an integer hour lag)")
                    })?,
                };
                Command::Query(SnapshotQuery::Autocorr { dir, lag })
            }
            "WATERMARK" => Command::Query(SnapshotQuery::Watermark),
            "STATS" => Command::Query(SnapshotQuery::Stats),
            "DATASET" => Command::Query(SnapshotQuery::Dataset),
            "HEALTH" => Command::Query(SnapshotQuery::Health),
            "QUIT" => Command::Quit,
            "SHUTDOWN" => Command::Shutdown,
            other => {
                return Err(format!(
                    "bad verb: {other} (expected HELLO, LIST, USE, START, SUBSCRIBE, RANK, R2, \
                     PEAKS, SERIES, AUTOCORR, WATERMARK, STATS, DATASET, HEALTH, QUIT or SHUTDOWN)"
                ))
            }
        };
        if let Some(extra) = tokens.next() {
            return Err(format!("bad {verb}: {extra} (unexpected trailing operand)"));
        }
        Ok(cmd)
    }
}

/// Answers `query` against the state's current snapshot, as protocol body
/// lines.
///
/// Analytical queries delegate to the exact batch analysis functions
/// ([`top_k_services`], [`spatial_correlation_of`],
/// [`topical_profiles_of`]) over the snapshot dataset, so on a complete
/// week the answers are bit-identical to a batch run's.
pub fn answer(state: &LiveState, query: &SnapshotQuery) -> Result<Vec<String>, String> {
    let snap = state.snapshot();
    answer_snapshot(state, &snap, query)
}

fn answer_snapshot(
    state: &LiveState,
    snap: &LiveSnapshot,
    query: &SnapshotQuery,
) -> Result<Vec<String>, String> {
    let head = state.catalog().head();
    match query {
        SnapshotQuery::Ranking { dir, k } => {
            // `top_k_services` itself clamps, but the protocol surfaces
            // the bound explicitly: a client asking for 0 or more than
            // the head holds gets an ERR, never a silently-resized body.
            if *k == 0 {
                return Err("k must be at least 1".into());
            }
            if *k > head.len() {
                return Err(format!("k {k} out of range (head has {})", head.len()));
            }
            let top = top_k_services(&snap.dataset, head, *dir, *k);
            Ok(top
                .iter()
                .map(|s| format!("{} {:e} {}", s.name, s.share_of_total, s.category.label()))
                .collect())
        }
        SnapshotQuery::PairwiseR2 { dir } => {
            let corr = spatial_correlation_of(&snap.dataset, state.service_names(), *dir);
            let mut lines = vec![format!("mean {:e}", corr.mean_r2)];
            for (s, name) in corr.names.iter().enumerate() {
                lines.push(format!("{name} {:e}", corr.service_mean_r2(s)));
            }
            Ok(lines)
        }
        SnapshotQuery::Peaks { dir } => {
            let profiles =
                topical_profiles_of(&snap.dataset, state.service_names(), *dir, &PeakConfig::paper());
            Ok(profiles
                .iter()
                .map(|p| {
                    let times: Vec<String> =
                        p.peak_times().iter().map(|t| format!("{t:?}")).collect();
                    let times = if times.is_empty() { "-".to_string() } else { times.join(",") };
                    format!("{} {times}", p.name)
                })
                .collect())
        }
        SnapshotQuery::Series { dir, service } => {
            if *service >= head.len() {
                return Err(format!(
                    "service index {service} out of range (head has {})",
                    head.len()
                ));
            }
            let window =
                snap.dataset.national_series_window(*dir, *service, 0, snap.watermark_hour);
            let values: Vec<String> = window.iter().map(|v| format!("{v:e}")).collect();
            Ok(vec![format!("{} {}", head[*service].name, values.join(" "))])
        }
        SnapshotQuery::Autocorr { dir, lag } => {
            if *lag == 0 {
                return Err("lag must be at least 1".into());
            }
            let window = snap.watermark_hour;
            let mut lines = Vec::with_capacity(head.len() + 1);
            let mut sum = 0.0;
            let mut defined = 0usize;
            let mut body = Vec::with_capacity(head.len());
            for (service, spec) in head.iter().enumerate() {
                let series = snap.dataset.national_series_window(*dir, service, 0, window);
                match hour_lag_autocorr(series, *lag) {
                    Some(r) => {
                        sum += r;
                        defined += 1;
                        body.push(format!("{} {:e}", spec.name, r));
                    }
                    None => body.push(format!("{} -", spec.name)),
                }
            }
            let mean = if defined > 0 {
                format!("{:e}", sum / defined as f64)
            } else {
                "-".to_string()
            };
            lines.push(format!("lag {lag} window {window} mean {mean}"));
            lines.extend(body);
            Ok(lines)
        }
        SnapshotQuery::Watermark => Ok(vec![format!(
            "hour {} complete {} version {} week {} weeks {}",
            snap.watermark_hour, snap.complete, snap.version, snap.week, snap.weeks
        )]),
        SnapshotQuery::Stats => {
            let i = &snap.ingest;
            Ok(vec![
                format!("chunks {}", i.chunks),
                format!("records {}", i.records),
                format!("peak_resident_records {}", i.peak_resident_records),
                format!("resident_budget {}", i.resident_budget()),
                format!("bytes_read {}", i.bytes_read),
                format!("chunk_size {}", i.chunk_size),
                format!("workers {}", i.workers),
                format!("cycles {}", i.cycles),
                format!("sessions {}", snap.stats.sessions),
                format!("lost_records {}", snap.stats.faults.lost_total()),
            ])
        }
        SnapshotQuery::Dataset => {
            Ok(snap.dataset.to_csv().lines().map(str::to_string).collect())
        }
        SnapshotQuery::Health => {
            let health = mobilenet_obs::snapshot().filtered(&["serve.", "netsim.ingest."]);
            let mut lines = Vec::new();
            for (name, v) in &health.counters {
                lines.push(format!("counter {name} {v}"));
            }
            for (name, v) in &health.fcounters {
                lines.push(format!("fcounter {name} {v:e}"));
            }
            for (name, v) in &health.gauges {
                lines.push(format!("gauge {name} {v:e}"));
            }
            Ok(lines)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v2_verbs_parse_and_errors_carry_the_offending_token() {
        assert_eq!(Command::parse("hello").unwrap(), Command::Hello);
        assert_eq!(Command::parse("LIST").unwrap(), Command::List);
        assert_eq!(Command::parse("USE alpha").unwrap(), Command::Use("alpha".into()));
        assert_eq!(
            Command::parse("START beta small 7 2").unwrap(),
            Command::Start { name: "beta".into(), scale: "small".into(), seed: Some(7), weeks: Some(2) }
        );
        assert_eq!(
            Command::parse("SUBSCRIBE rank,watermark").unwrap(),
            Command::Subscribe(vec![Topic::Rank, Topic::Watermark])
        );
        assert_eq!(
            Command::parse("AUTOCORR dl").unwrap(),
            Command::Query(SnapshotQuery::Autocorr { dir: Direction::Down, lag: AUTOCORR_LAG_HOURS })
        );

        let err = Command::parse("RANK dl twenty").unwrap_err();
        assert!(err.starts_with("bad RANK: twenty"), "unexpected message {err:?}");
        let err = Command::parse("RANK sideways 3").unwrap_err();
        assert!(err.starts_with("bad RANK: sideways"), "unexpected message {err:?}");
        let err = Command::parse("USE").unwrap_err();
        assert!(err.starts_with("bad USE: missing"), "unexpected message {err:?}");
        let err = Command::parse("WATERMARK extra").unwrap_err();
        assert!(err.starts_with("bad WATERMARK: extra"), "unexpected message {err:?}");
        let err = Command::parse("FROBNICATE").unwrap_err();
        assert!(err.starts_with("bad verb: FROBNICATE"), "unexpected message {err:?}");
    }

    #[test]
    fn hour_lag_autocorr_matches_hand_cases() {
        // A perfect 24h-periodic series correlates exactly at lag 24.
        let periodic: Vec<f64> = (0..168).map(|h| ((h % 24) as f64).sin()).collect();
        let r = hour_lag_autocorr(&periodic, 24).unwrap();
        assert!((r - 1.0).abs() < 1e-12, "periodic series lag-24 r = {r}");
        // A constant series has no defined correlation.
        assert_eq!(hour_lag_autocorr(&[1.0; 168], 24), None);
        // Too-short windows are None, not NaN.
        assert_eq!(hour_lag_autocorr(&periodic[..25], 24), None);
        assert_eq!(hour_lag_autocorr(&periodic, 0), None);
        // An alternating series anti-correlates at lag 1.
        let alternating: Vec<f64> = (0..48).map(|h| if h % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let r = hour_lag_autocorr(&alternating, 1).unwrap();
        assert!((r + 1.0).abs() < 1e-12, "alternating series lag-1 r = {r}");
    }
}
