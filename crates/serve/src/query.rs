//! Snapshot queries and the line protocol they travel over.
//!
//! # Protocol grammar
//!
//! One request per line, case-insensitive verb, space-separated operands;
//! `<dir>` is `dl` or `ul`:
//!
//! ```text
//! request   = query | "QUIT" | "SHUTDOWN"
//! query     = "RANK" dir k          ; top-k service ranking, 1 <= k <= |head|
//!           | "R2" dir              ; pairwise spatial correlation
//!           | "PEAKS" dir           ; topical peak profiles
//!           | "SERIES" dir service  ; national hourly series up to the watermark
//!           | "WATERMARK"           ; frontier / completeness / version
//!           | "STATS"               ; ingestion accounting
//!           | "DATASET"             ; full dataset CSV (batch-export format)
//!           | "HEALTH"              ; serve.* + netsim.ingest.* obs metrics
//! dir       = "dl" | "ul"
//! ```
//!
//! Responses are framed as `OK <n>` followed by exactly `n` body lines,
//! or a single `ERR <message>` line. `QUIT` closes the connection
//! (without a response); `SHUTDOWN` additionally stops the server.
//!
//! Floating-point values render with `{:e}` — the trace/CSV notation the
//! rest of the workspace round-trips — so two bit-identical snapshots
//! produce byte-identical responses. `DATASET` bodies are exactly
//! [`TrafficDataset::to_csv`](mobilenet_traffic::TrafficDataset), which
//! is what lets the CI smoke test `cmp` a live dump against a batch
//! export.

use mobilenet_core::peaks::PeakConfig;
use mobilenet_core::{spatial_correlation_of, top_k_services, topical_profiles_of};
use mobilenet_traffic::Direction;

use crate::live::{LiveSnapshot, LiveState};

/// A read-only question about the current live aggregate.
///
/// `#[non_exhaustive]`: new query kinds are non-breaking; construct via
/// the enum variants or [`SnapshotQuery::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotQuery {
    /// Top-`k` head services by share of total volume.
    Ranking {
        /// Direction ranked.
        dir: Direction,
        /// How many services to return.
        k: usize,
    },
    /// Pairwise spatial correlation (mean + per-service means).
    PairwiseR2 {
        /// Direction correlated.
        dir: Direction,
    },
    /// Topical peak profile of every head service.
    Peaks {
        /// Direction profiled.
        dir: Direction,
    },
    /// One service's national hourly series up to the watermark.
    Series {
        /// Direction read.
        dir: Direction,
        /// Head-service index.
        service: usize,
    },
    /// Observed frontier, completeness and state version.
    Watermark,
    /// Streaming-engine accounting.
    Stats,
    /// The full dataset in batch-export CSV format.
    Dataset,
    /// Health endpoint: the `serve.*` / `netsim.ingest.*` slice of the
    /// observability registry.
    Health,
}

/// One parsed protocol line: a query or a connection-control verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Answer a snapshot query.
    Query(SnapshotQuery),
    /// Close this connection.
    Quit,
    /// Close this connection and stop the server.
    Shutdown,
}

fn parse_dir(token: &str) -> Result<Direction, String> {
    match token.to_ascii_lowercase().as_str() {
        "dl" => Ok(Direction::Down),
        "ul" => Ok(Direction::Up),
        other => Err(format!("unknown direction {other:?} (expected dl or ul)")),
    }
}

impl SnapshotQuery {
    /// Parses one protocol line into a query (see the module docs for
    /// the grammar). Connection-control verbs are rejected here; use
    /// [`Command::parse`] when speaking the full protocol.
    pub fn parse(line: &str) -> Result<SnapshotQuery, String> {
        match Command::parse(line)? {
            Command::Query(q) => Ok(q),
            other => Err(format!("{other:?} is not a snapshot query")),
        }
    }
}

impl Command {
    /// Parses one protocol line.
    pub fn parse(line: &str) -> Result<Command, String> {
        let mut tokens = line.split_whitespace();
        let verb = tokens.next().ok_or_else(|| "empty request".to_string())?;
        let mut operand = |name: &str| {
            tokens
                .next()
                .ok_or_else(|| format!("{} requires {name}", verb.to_ascii_uppercase()))
        };
        let cmd = match verb.to_ascii_uppercase().as_str() {
            "RANK" => {
                let dir = parse_dir(operand("<dir> <k>")?)?;
                let k = operand("<dir> <k>")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad k: {e}"))?;
                Command::Query(SnapshotQuery::Ranking { dir, k })
            }
            "R2" => Command::Query(SnapshotQuery::PairwiseR2 { dir: parse_dir(operand("<dir>")?)? }),
            "PEAKS" => Command::Query(SnapshotQuery::Peaks { dir: parse_dir(operand("<dir>")?)? }),
            "SERIES" => {
                let dir = parse_dir(operand("<dir> <service>")?)?;
                let service = operand("<dir> <service>")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad service index: {e}"))?;
                Command::Query(SnapshotQuery::Series { dir, service })
            }
            "WATERMARK" => Command::Query(SnapshotQuery::Watermark),
            "STATS" => Command::Query(SnapshotQuery::Stats),
            "DATASET" => Command::Query(SnapshotQuery::Dataset),
            "HEALTH" => Command::Query(SnapshotQuery::Health),
            "QUIT" => Command::Quit,
            "SHUTDOWN" => Command::Shutdown,
            other => return Err(format!("unknown verb {other:?}")),
        };
        if tokens.next().is_some() {
            return Err("trailing operands".into());
        }
        Ok(cmd)
    }
}

/// Answers `query` against the state's current snapshot, as protocol body
/// lines.
///
/// Analytical queries delegate to the exact batch analysis functions
/// ([`top_k_services`], [`spatial_correlation_of`],
/// [`topical_profiles_of`]) over the snapshot dataset, so on a complete
/// week the answers are bit-identical to a batch run's.
pub fn answer(state: &LiveState, query: &SnapshotQuery) -> Result<Vec<String>, String> {
    let snap = state.snapshot();
    answer_snapshot(state, &snap, query)
}

fn answer_snapshot(
    state: &LiveState,
    snap: &LiveSnapshot,
    query: &SnapshotQuery,
) -> Result<Vec<String>, String> {
    let head = state.catalog().head();
    match query {
        SnapshotQuery::Ranking { dir, k } => {
            // `top_k_services` itself clamps, but the protocol surfaces
            // the bound explicitly: a client asking for 0 or more than
            // the head holds gets an ERR, never a silently-resized body.
            if *k == 0 {
                return Err("k must be at least 1".into());
            }
            if *k > head.len() {
                return Err(format!("k {k} out of range (head has {})", head.len()));
            }
            let top = top_k_services(&snap.dataset, head, *dir, *k);
            Ok(top
                .iter()
                .map(|s| format!("{} {:e} {}", s.name, s.share_of_total, s.category.label()))
                .collect())
        }
        SnapshotQuery::PairwiseR2 { dir } => {
            let corr = spatial_correlation_of(&snap.dataset, state.service_names(), *dir);
            let mut lines = vec![format!("mean {:e}", corr.mean_r2)];
            for (s, name) in corr.names.iter().enumerate() {
                lines.push(format!("{name} {:e}", corr.service_mean_r2(s)));
            }
            Ok(lines)
        }
        SnapshotQuery::Peaks { dir } => {
            let profiles =
                topical_profiles_of(&snap.dataset, state.service_names(), *dir, &PeakConfig::paper());
            Ok(profiles
                .iter()
                .map(|p| {
                    let times: Vec<String> =
                        p.peak_times().iter().map(|t| format!("{t:?}")).collect();
                    let times = if times.is_empty() { "-".to_string() } else { times.join(",") };
                    format!("{} {times}", p.name)
                })
                .collect())
        }
        SnapshotQuery::Series { dir, service } => {
            if *service >= head.len() {
                return Err(format!(
                    "service index {service} out of range (head has {})",
                    head.len()
                ));
            }
            let window =
                snap.dataset.national_series_window(*dir, *service, 0, snap.watermark_hour);
            let values: Vec<String> = window.iter().map(|v| format!("{v:e}")).collect();
            Ok(vec![format!("{} {}", head[*service].name, values.join(" "))])
        }
        SnapshotQuery::Watermark => Ok(vec![format!(
            "hour {} complete {} version {}",
            snap.watermark_hour, snap.complete, snap.version
        )]),
        SnapshotQuery::Stats => {
            let i = &snap.ingest;
            Ok(vec![
                format!("chunks {}", i.chunks),
                format!("records {}", i.records),
                format!("peak_resident_records {}", i.peak_resident_records),
                format!("resident_budget {}", i.resident_budget()),
                format!("bytes_read {}", i.bytes_read),
                format!("chunk_size {}", i.chunk_size),
                format!("workers {}", i.workers),
                format!("sessions {}", snap.stats.sessions),
                format!("lost_records {}", snap.stats.faults.lost_total()),
            ])
        }
        SnapshotQuery::Dataset => {
            Ok(snap.dataset.to_csv().lines().map(str::to_string).collect())
        }
        SnapshotQuery::Health => {
            let health = mobilenet_obs::snapshot().filtered(&["serve.", "netsim.ingest."]);
            let mut lines = Vec::new();
            for (name, v) in &health.counters {
                lines.push(format!("counter {name} {v}"));
            }
            for (name, v) in &health.fcounters {
                lines.push(format!("fcounter {name} {v:e}"));
            }
            for (name, v) in &health.gauges {
                lines.push(format!("gauge {name} {v:e}"));
            }
            Ok(lines)
        }
    }
}
