//! A std-only TCP server speaking the sessioned v2 protocol.
//!
//! [`spawn_registry_server`] binds a listener over a
//! [`StudyRegistry`] and returns immediately; an accept thread hands
//! each connection to its own worker thread, so many clients query (and
//! subscribe) concurrently while each study's ingestion streams on its
//! own thread. Everything is `std::net` + `std::thread` — no async
//! runtime. [`spawn_server`] keeps the single-study v1 signature: it
//! wraps the state in a one-entry registry (study name `default`), which
//! the session layer auto-selects.
//!
//! Per connection the protocol is line-oriented (see [`crate::query`]
//! for the v2 grammar): each request line is answered with `OK <n>` plus
//! `n` body lines, or `ERR <message>`. `QUIT` ends the connection;
//! `SHUTDOWN` ends the connection and stops the server. `SUBSCRIBE`
//! switches the connection into **event mode**: the worker streams
//! `EVENT <seq> <payload>` lines from its subscriber queue until the
//! stream's `end` event (connection returns to command mode) or server
//! stop (connection closes). The streaming write loop waits on the
//! subscriber queue with the same bounded tick as reads
//! ([`READ_TIMEOUT`]) and re-checks the stop flag every tick — a
//! `SHUTDOWN` from *another* connection wakes mid-`SUBSCRIBE` writers
//! too, it never strands them on an idle queue.
//!
//! The server defends itself against misbehaving clients: protocol lines
//! are capped at [`MAX_LINE_BYTES`] (an overlong line is answered with
//! `ERR line too long` and drained without ever buffering it), client
//! sockets carry a read timeout so idle connections periodically re-check
//! the stop flag instead of pinning their threads past `SHUTDOWN`, and
//! slow subscribers lose events (counted on `serve.subscriber_lagged`)
//! rather than ever back-pressuring ingestion.
//!
//! The server publishes its own observability metrics:
//! `serve.connections`, `serve.queries`, `serve.query_errors`,
//! `serve.dropped_lines`, `serve.subscriptions`,
//! `serve.subscriber_lagged`, `serve.events` (counters) and
//! `serve.active_clients`, `serve.subscribers`, `serve.studies` (gauges)
//! — all visible through the `HEALTH` verb alongside the
//! `netsim.ingest.*` family.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::live::LiveState;
use crate::query::{answer, Command};
use crate::registry::{StudyEntry, StudyRegistry};
use crate::session::Session;
use crate::subscribe::{DeltaEvent, Subscriber};

/// Longest accepted protocol request line, bytes (newline included).
/// Every valid query fits in well under 100 bytes; the cap only exists so
/// a client streaming garbage without `\n` cannot grow the line buffer
/// without bound.
pub const MAX_LINE_BYTES: usize = 4096;

/// How long a client read (or a streaming writer's queue wait) blocks
/// before waking to re-check the server stop flag. Keeps `SHUTDOWN`
/// effective even with idle or subscribed clients attached.
const READ_TIMEOUT: Duration = Duration::from_millis(250);

/// Shared server control block.
struct ServerShared {
    registry: Arc<StudyRegistry>,
    active_clients: AtomicU64,
}

/// A running query server; dropping the handle does **not** stop it —
/// call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port `0` binds).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The registry this server serves.
    pub fn registry(&self) -> &Arc<StudyRegistry> {
        &self.shared.registry
    }

    /// Blocks until the server stops — either via
    /// [`ServerHandle::shutdown`] from another thread or a client's
    /// `SHUTDOWN` — without initiating the stop itself.
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Stops accepting connections, joins the accept thread, and shuts
    /// the registry down (publisher and ingestion threads joined).
    ///
    /// In-flight client threads finish their current request and exit at
    /// the next read (or streaming-tick). Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.registry.request_stop();
        // The accept loop blocks in `accept`; a throwaway connection
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.shared.registry.shutdown();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// `registry`'s studies until [`ServerHandle::shutdown`] or a client's
/// `SHUTDOWN`.
pub fn spawn_registry_server(
    registry: Arc<StudyRegistry>,
    addr: &str,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(ServerShared { registry, active_clients: AtomicU64::new(0) });
    let accept_shared = shared.clone();
    let accept_thread = std::thread::Builder::new()
        .name("serve-accept".into())
        .spawn(move || accept_loop(listener, accept_shared))?;
    Ok(ServerHandle { addr: local, shared, accept_thread: Some(accept_thread) })
}

/// Binds `addr` and serves snapshot queries against a single `state` —
/// the v1 signature, kept as a wrapper over a one-study registry
/// (study name `default`; ingestion is driven by the caller, exactly as
/// before).
pub fn spawn_server(state: Arc<LiveState>, addr: &str) -> io::Result<ServerHandle> {
    let registry = StudyRegistry::new();
    let weeks = state.weeks();
    registry
        .register_state("default", "custom", state, weeks)
        .map_err(io::Error::other)?;
    spawn_registry_server(registry, addr)
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    for conn in listener.incoming() {
        if shared.registry.stopping() {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        mobilenet_obs::add("serve.connections", 1);
        let n = shared.active_clients.fetch_add(1, Ordering::SeqCst) + 1;
        mobilenet_obs::gauge("serve.active_clients", n as f64);
        let client_shared = shared.clone();
        // Detached worker: the connection owns its thread; `shutdown`
        // only needs the accept loop joined, clients exit at their next
        // read (or streaming tick) after the stop flag rises.
        let spawned = std::thread::Builder::new()
            .name("serve-client".into())
            .spawn(move || {
                let _ = serve_client(stream, &client_shared);
                let n = client_shared.active_clients.fetch_sub(1, Ordering::SeqCst) - 1;
                mobilenet_obs::gauge("serve.active_clients", n as f64);
            });
        if spawned.is_err() {
            let n = shared.active_clients.fetch_sub(1, Ordering::SeqCst) - 1;
            mobilenet_obs::gauge("serve.active_clients", n as f64);
        }
    }
}

/// One bounded line-read outcome.
enum LineRead {
    /// A complete line of at most [`MAX_LINE_BYTES`] arrived.
    Line,
    /// The peer closed the connection (a trailing unterminated fragment
    /// is dropped — it was never a request).
    Eof,
    /// The server stop flag was raised while waiting.
    Stopped,
    /// The line exceeded [`MAX_LINE_BYTES`]; the excess was drained up to
    /// its newline without being buffered.
    TooLong,
}

/// Reads one `\n`-terminated line into `line`, buffering at most
/// [`MAX_LINE_BYTES`] and draining (not storing) anything longer. Read
/// timeouts are treated as ticks to re-check `stop`, so a silent client
/// cannot pin this thread past a shutdown.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    stop: &AtomicBool,
    line: &mut String,
) -> io::Result<LineRead> {
    line.clear();
    let mut buf: Vec<u8> = Vec::new();
    let mut overflowed = false;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(LineRead::Stopped);
        }
        let available = match reader.fill_buf() {
            Ok(bytes) => bytes,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(LineRead::Eof);
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        if !overflowed {
            if buf.len() + take > MAX_LINE_BYTES {
                overflowed = true;
                buf.clear();
            } else {
                buf.extend_from_slice(&available[..take]);
            }
        }
        reader.consume(take);
        if newline.is_some() {
            if overflowed {
                return Ok(LineRead::TooLong);
            }
            *line = String::from_utf8_lossy(&buf).into_owned();
            return Ok(LineRead::Line);
        }
    }
}

/// Writes an `OK <n>` framed response.
fn write_ok(writer: &mut TcpStream, body: &[String]) -> io::Result<()> {
    let mut response = format!("OK {}\n", body.len());
    for l in body {
        response.push_str(l);
        response.push('\n');
    }
    writer.write_all(response.as_bytes())?;
    writer.flush()
}

/// How a subscription's streaming loop ended.
enum StreamOutcome {
    /// The stream's `end` event was delivered; back to command mode.
    Ended,
    /// The server stop flag rose; close the connection.
    Stopped,
}

/// Streams a subscription's events to the client until the stream ends
/// or the server stops. Every queue wait is bounded by [`READ_TIMEOUT`]
/// and followed by a stop-flag recheck — the regression PR 8 fixed on
/// the read path, mirrored here on the write path: a `SHUTDOWN` issued
/// elsewhere wakes this writer within one tick even if no event ever
/// arrives.
fn stream_events(
    writer: &mut TcpStream,
    registry: &StudyRegistry,
    entry: &Arc<StudyEntry>,
    sub: &Arc<Subscriber>,
) -> io::Result<StreamOutcome> {
    let outcome = loop {
        if registry.stopping() {
            break StreamOutcome::Stopped;
        }
        let Some((seq, event)) = sub.pop_wait(READ_TIMEOUT) else {
            continue;
        };
        let ended = matches!(event, DeltaEvent::End { .. });
        writeln!(writer, "EVENT {seq} {}", event.to_wire())?;
        writer.flush()?;
        if ended {
            break StreamOutcome::Ended;
        }
    };
    entry.hub().unsubscribe(sub);
    Ok(outcome)
}

/// Serves one connection until `QUIT`/`SHUTDOWN`/EOF/server stop.
fn serve_client(stream: TcpStream, shared: &Arc<ServerShared>) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut session = Session::new(shared.registry.clone());
    let mut line = String::new();
    loop {
        match read_bounded_line(&mut reader, shared.registry.stop_flag(), &mut line)? {
            LineRead::Eof | LineRead::Stopped => return Ok(()),
            LineRead::TooLong => {
                mobilenet_obs::add("serve.dropped_lines", 1);
                mobilenet_obs::add("serve.query_errors", 1);
                writeln!(writer, "ERR line too long (max {MAX_LINE_BYTES} bytes)")?;
                writer.flush()?;
                continue;
            }
            LineRead::Line => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let outcome = match Command::parse(&line) {
            Ok(Command::Quit) => return Ok(()),
            Ok(Command::Shutdown) => {
                // `request_stop` wakes publisher waits and subscriber
                // queues along with raising the flag, so connections
                // mid-`SUBSCRIBE` notice within one tick.
                shared.registry.request_stop();
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(writer.local_addr()?);
                writeln!(writer, "OK 0")?;
                writer.flush()?;
                return Ok(());
            }
            Ok(Command::Hello) => write_ok(&mut writer, &session.hello()),
            Ok(Command::List) => write_ok(&mut writer, &session.list()),
            Ok(Command::Use(name)) => match session.use_study(&name) {
                Ok(body) => write_ok(&mut writer, &body),
                Err(msg) => write_err(&mut writer, &msg),
            },
            Ok(Command::Start { name, scale, seed, weeks }) => {
                match session.start(&name, &scale, seed, weeks) {
                    Ok(body) => write_ok(&mut writer, &body),
                    Err(msg) => write_err(&mut writer, &msg),
                }
            }
            Ok(Command::Subscribe(topics)) => match session.subscribe(topics) {
                Ok((entry, sub)) => {
                    write_ok(&mut writer, &[])?;
                    match stream_events(&mut writer, &shared.registry, &entry, &sub)? {
                        StreamOutcome::Ended => Ok(()),
                        StreamOutcome::Stopped => return Ok(()),
                    }
                }
                Err(msg) => write_err(&mut writer, &msg),
            },
            Ok(Command::Query(query)) => {
                mobilenet_obs::add("serve.queries", 1);
                match session.current() {
                    Ok(entry) => match answer(entry.state(), &query) {
                        Ok(body) => write_ok(&mut writer, &body),
                        Err(msg) => write_err(&mut writer, &msg),
                    },
                    Err(msg) => write_err(&mut writer, &msg),
                }
            }
            Err(msg) => write_err(&mut writer, &msg),
        };
        outcome?;
    }
}

/// Writes an `ERR` response and counts it.
fn write_err(writer: &mut TcpStream, msg: &str) -> io::Result<()> {
    mobilenet_obs::add("serve.query_errors", 1);
    writeln!(writer, "ERR {msg}")?;
    writer.flush()
}
