//! A std-only TCP server answering snapshot queries during ingestion.
//!
//! [`spawn_server`] binds a listener and returns immediately; an accept
//! thread hands each connection to its own worker thread, so many
//! clients query concurrently while [`LiveState::run_ingestion`] streams
//! on yet another thread. Everything is `std::net` + `std::thread` — no
//! async runtime.
//!
//! Per connection the protocol is line-oriented (see
//! [`crate::query`] for the grammar): each request line is answered with
//! `OK <n>` plus `n` body lines, or `ERR <message>`. `QUIT` ends the
//! connection; `SHUTDOWN` ends the connection and stops the server.
//!
//! The server publishes its own observability metrics:
//! `serve.connections`, `serve.queries`, `serve.query_errors` (counters)
//! and `serve.active_clients` (gauge) — all visible through the `HEALTH`
//! verb alongside the `netsim.ingest.*` family.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::live::LiveState;
use crate::query::{answer, Command};

/// Shared server control block.
struct ServerShared {
    state: Arc<LiveState>,
    stop: AtomicBool,
    active_clients: AtomicU64,
}

/// A running query server; dropping the handle does **not** stop it —
/// call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port `0` binds).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Blocks until the server stops — either via
    /// [`ServerHandle::shutdown`] from another thread or a client's
    /// `SHUTDOWN` — without initiating the stop itself.
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Stops accepting connections and joins the accept thread.
    ///
    /// In-flight client threads finish their current request and exit at
    /// the next read. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; a throwaway connection
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// snapshot queries against `state` until [`ServerHandle::shutdown`] or a
/// client sends `SHUTDOWN`.
pub fn spawn_server(state: Arc<LiveState>, addr: &str) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(ServerShared {
        state,
        stop: AtomicBool::new(false),
        active_clients: AtomicU64::new(0),
    });
    let accept_shared = shared.clone();
    let accept_thread = std::thread::Builder::new()
        .name("serve-accept".into())
        .spawn(move || accept_loop(listener, accept_shared))?;
    Ok(ServerHandle { addr: local, shared, accept_thread: Some(accept_thread) })
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        mobilenet_obs::add("serve.connections", 1);
        let n = shared.active_clients.fetch_add(1, Ordering::SeqCst) + 1;
        mobilenet_obs::gauge("serve.active_clients", n as f64);
        let client_shared = shared.clone();
        // Detached worker: the connection owns its thread; `shutdown`
        // only needs the accept loop joined, clients exit at their next
        // read after the peer hangs up.
        let spawned = std::thread::Builder::new()
            .name("serve-client".into())
            .spawn(move || {
                let _ = serve_client(stream, &client_shared);
                let n = client_shared.active_clients.fetch_sub(1, Ordering::SeqCst) - 1;
                mobilenet_obs::gauge("serve.active_clients", n as f64);
            });
        if spawned.is_err() {
            let n = shared.active_clients.fetch_sub(1, Ordering::SeqCst) - 1;
            mobilenet_obs::gauge("serve.active_clients", n as f64);
        }
    }
}

/// Serves one connection until `QUIT`/`SHUTDOWN`/EOF.
fn serve_client(stream: TcpStream, shared: &Arc<ServerShared>) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // EOF
        }
        if line.trim().is_empty() {
            continue;
        }
        match Command::parse(&line) {
            Ok(Command::Quit) => return Ok(()),
            Ok(Command::Shutdown) => {
                shared.stop.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(writer.local_addr()?);
                writeln!(writer, "OK 0")?;
                return Ok(());
            }
            Ok(Command::Query(query)) => {
                mobilenet_obs::add("serve.queries", 1);
                match answer(&shared.state, &query) {
                    Ok(body) => {
                        let mut response = format!("OK {}\n", body.len());
                        for l in &body {
                            response.push_str(l);
                            response.push('\n');
                        }
                        writer.write_all(response.as_bytes())?;
                    }
                    Err(msg) => {
                        mobilenet_obs::add("serve.query_errors", 1);
                        writeln!(writer, "ERR {msg}")?;
                    }
                }
            }
            Err(msg) => {
                mobilenet_obs::add("serve.query_errors", 1);
                writeln!(writer, "ERR {msg}")?;
            }
        }
        writer.flush()?;
    }
}
