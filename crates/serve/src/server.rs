//! A std-only TCP server answering snapshot queries during ingestion.
//!
//! [`spawn_server`] binds a listener and returns immediately; an accept
//! thread hands each connection to its own worker thread, so many
//! clients query concurrently while [`LiveState::run_ingestion`] streams
//! on yet another thread. Everything is `std::net` + `std::thread` — no
//! async runtime.
//!
//! Per connection the protocol is line-oriented (see
//! [`crate::query`] for the grammar): each request line is answered with
//! `OK <n>` plus `n` body lines, or `ERR <message>`. `QUIT` ends the
//! connection; `SHUTDOWN` ends the connection and stops the server.
//!
//! The server defends itself against misbehaving clients: protocol lines
//! are capped at [`MAX_LINE_BYTES`] (an overlong line is answered with
//! `ERR line too long` and drained without ever buffering it), and client
//! sockets carry a read timeout so idle connections periodically re-check
//! the stop flag instead of pinning their threads past `SHUTDOWN`.
//!
//! The server publishes its own observability metrics:
//! `serve.connections`, `serve.queries`, `serve.query_errors`,
//! `serve.dropped_lines` (counters) and `serve.active_clients` (gauge) —
//! all visible through the `HEALTH` verb alongside the `netsim.ingest.*`
//! family.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::live::LiveState;
use crate::query::{answer, Command};

/// Longest accepted protocol request line, bytes (newline included).
/// Every valid query fits in well under 100 bytes; the cap only exists so
/// a client streaming garbage without `\n` cannot grow the line buffer
/// without bound.
pub const MAX_LINE_BYTES: usize = 4096;

/// How long a client read blocks before waking to re-check the server
/// stop flag. Keeps `SHUTDOWN` effective even with idle clients attached.
const READ_TIMEOUT: Duration = Duration::from_millis(250);

/// Shared server control block.
struct ServerShared {
    state: Arc<LiveState>,
    stop: AtomicBool,
    active_clients: AtomicU64,
}

/// A running query server; dropping the handle does **not** stop it —
/// call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port `0` binds).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Blocks until the server stops — either via
    /// [`ServerHandle::shutdown`] from another thread or a client's
    /// `SHUTDOWN` — without initiating the stop itself.
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Stops accepting connections and joins the accept thread.
    ///
    /// In-flight client threads finish their current request and exit at
    /// the next read. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; a throwaway connection
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// snapshot queries against `state` until [`ServerHandle::shutdown`] or a
/// client sends `SHUTDOWN`.
pub fn spawn_server(state: Arc<LiveState>, addr: &str) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(ServerShared {
        state,
        stop: AtomicBool::new(false),
        active_clients: AtomicU64::new(0),
    });
    let accept_shared = shared.clone();
    let accept_thread = std::thread::Builder::new()
        .name("serve-accept".into())
        .spawn(move || accept_loop(listener, accept_shared))?;
    Ok(ServerHandle { addr: local, shared, accept_thread: Some(accept_thread) })
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        mobilenet_obs::add("serve.connections", 1);
        let n = shared.active_clients.fetch_add(1, Ordering::SeqCst) + 1;
        mobilenet_obs::gauge("serve.active_clients", n as f64);
        let client_shared = shared.clone();
        // Detached worker: the connection owns its thread; `shutdown`
        // only needs the accept loop joined, clients exit at their next
        // read after the peer hangs up.
        let spawned = std::thread::Builder::new()
            .name("serve-client".into())
            .spawn(move || {
                let _ = serve_client(stream, &client_shared);
                let n = client_shared.active_clients.fetch_sub(1, Ordering::SeqCst) - 1;
                mobilenet_obs::gauge("serve.active_clients", n as f64);
            });
        if spawned.is_err() {
            let n = shared.active_clients.fetch_sub(1, Ordering::SeqCst) - 1;
            mobilenet_obs::gauge("serve.active_clients", n as f64);
        }
    }
}

/// One bounded line-read outcome.
enum LineRead {
    /// A complete line of at most [`MAX_LINE_BYTES`] arrived.
    Line,
    /// The peer closed the connection (a trailing unterminated fragment
    /// is dropped — it was never a request).
    Eof,
    /// The server stop flag was raised while waiting.
    Stopped,
    /// The line exceeded [`MAX_LINE_BYTES`]; the excess was drained up to
    /// its newline without being buffered.
    TooLong,
}

/// Reads one `\n`-terminated line into `line`, buffering at most
/// [`MAX_LINE_BYTES`] and draining (not storing) anything longer. Read
/// timeouts are treated as ticks to re-check `stop`, so a silent client
/// cannot pin this thread past a shutdown.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    stop: &AtomicBool,
    line: &mut String,
) -> io::Result<LineRead> {
    line.clear();
    let mut buf: Vec<u8> = Vec::new();
    let mut overflowed = false;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(LineRead::Stopped);
        }
        let available = match reader.fill_buf() {
            Ok(bytes) => bytes,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(LineRead::Eof);
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        if !overflowed {
            if buf.len() + take > MAX_LINE_BYTES {
                overflowed = true;
                buf.clear();
            } else {
                buf.extend_from_slice(&available[..take]);
            }
        }
        reader.consume(take);
        if newline.is_some() {
            if overflowed {
                return Ok(LineRead::TooLong);
            }
            *line = String::from_utf8_lossy(&buf).into_owned();
            return Ok(LineRead::Line);
        }
    }
}

/// Serves one connection until `QUIT`/`SHUTDOWN`/EOF/server stop.
fn serve_client(stream: TcpStream, shared: &Arc<ServerShared>) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        match read_bounded_line(&mut reader, &shared.stop, &mut line)? {
            LineRead::Eof | LineRead::Stopped => return Ok(()),
            LineRead::TooLong => {
                mobilenet_obs::add("serve.dropped_lines", 1);
                mobilenet_obs::add("serve.query_errors", 1);
                writeln!(writer, "ERR line too long (max {MAX_LINE_BYTES} bytes)")?;
                writer.flush()?;
                continue;
            }
            LineRead::Line => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        match Command::parse(&line) {
            Ok(Command::Quit) => return Ok(()),
            Ok(Command::Shutdown) => {
                shared.stop.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(writer.local_addr()?);
                writeln!(writer, "OK 0")?;
                return Ok(());
            }
            Ok(Command::Query(query)) => {
                mobilenet_obs::add("serve.queries", 1);
                match answer(&shared.state, &query) {
                    Ok(body) => {
                        let mut response = format!("OK {}\n", body.len());
                        for l in &body {
                            response.push_str(l);
                            response.push('\n');
                        }
                        writer.write_all(response.as_bytes())?;
                    }
                    Err(msg) => {
                        mobilenet_obs::add("serve.query_errors", 1);
                        writeln!(writer, "ERR {msg}")?;
                    }
                }
            }
            Err(msg) => {
                mobilenet_obs::add("serve.query_errors", 1);
                writeln!(writer, "ERR {msg}")?;
            }
        }
        writer.flush()?;
    }
}
