//! Delta subscriptions: framed change events pushed to clients instead
//! of polled snapshots.
//!
//! A `SUBSCRIBE` turns a protocol connection into an event stream. One
//! **publisher thread per study** (spawned by the
//! [`StudyRegistry`](crate::registry::StudyRegistry) at registration)
//! waits on the state's [`VersionNotifier`], and on every change builds
//! the round's [`DeltaEvent`]s from the version-cached snapshot:
//!
//! * watermark advances (`(week, hour)` lexicographic, plus completion);
//! * version bumps (coalesced — one event per publish round);
//! * per-direction **rank churn**: the full head ranking, emitted when
//!   the *order* changes (and always once at completion, so replaying a
//!   subscription ends bit-identical to a polled `RANK`);
//! * the Jo-style **hour-lag autocorrelation** (PAPERS.md: Jo et al.'s
//!   handset-usage spatiotemporal correlations): the mean lag-24
//!   diurnal autocorrelation of the head services' national series over
//!   the observed window, re-derived per watermark advance.
//!
//! # Backpressure
//!
//! Every subscriber owns a **bounded queue**
//! ([`SUBSCRIBER_QUEUE_EVENTS`]). The publisher never blocks on a
//! client: a full queue drops the event and counts it on the
//! subscriber's lag counter and the `serve.subscriber_lagged` obs
//! counter; per-subscriber sequence numbers make the gap visible to the
//! client. The ingest path itself only ever *notifies* — it never
//! touches a queue, a socket, or a snapshot.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use mobilenet_core::top_k_services;
use mobilenet_traffic::Direction;

use crate::live::LiveState;
use crate::query::{dir_token, hour_lag_autocorr, parse_dir};

/// Most events a subscriber's queue buffers before the publisher starts
/// dropping (and counting) instead of blocking.
pub const SUBSCRIBER_QUEUE_EVENTS: usize = 256;

/// Hour lag of the subscription autocorrelation statistic: one day, the
/// diurnal period the paper's temporal analyses revolve around.
pub const AUTOCORR_LAG_HOURS: usize = 24;

/// Publisher idle tick: how long a publisher waits for a version
/// notification before re-checking the stop flag (and how stale a
/// missed wake-up can go at worst).
const PUBLISH_TICK: Duration = Duration::from_millis(100);

/// One subscribable event family.
///
/// `#[non_exhaustive]`: new families are non-breaking; parse via
/// [`Topic::parse_list`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Topic {
    /// Watermark advances (week, hour, completion).
    Watermark,
    /// State version bumps (coalesced per publish round).
    Version,
    /// Per-direction rank churn.
    Rank,
    /// Hour-lag autocorrelation updates.
    Autocorr,
}

impl Topic {
    /// Every topic, in wire order.
    pub const ALL: [Topic; 4] = [Topic::Watermark, Topic::Version, Topic::Rank, Topic::Autocorr];

    /// The wire token of this topic.
    pub fn token(self) -> &'static str {
        match self {
            Topic::Watermark => "watermark",
            Topic::Version => "version",
            Topic::Rank => "rank",
            Topic::Autocorr => "autocorr",
        }
    }

    /// Parses a comma-separated topic list; `all` selects every topic.
    pub fn parse_list(tokens: &str) -> Result<Vec<Topic>, String> {
        let mut topics = Vec::new();
        for token in tokens.split(',') {
            let topic = match token.to_ascii_lowercase().as_str() {
                "all" => {
                    return Ok(Topic::ALL.to_vec());
                }
                "watermark" => Topic::Watermark,
                "version" => Topic::Version,
                "rank" => Topic::Rank,
                "autocorr" => Topic::Autocorr,
                other => {
                    return Err(format!(
                        "bad SUBSCRIBE: {other} (expected all or a comma list of \
                         watermark,version,rank,autocorr)"
                    ))
                }
            };
            if !topics.contains(&topic) {
                topics.push(topic);
            }
        }
        if topics.is_empty() {
            return Err("bad SUBSCRIBE: empty topic list".into());
        }
        Ok(topics)
    }
}

/// One entry of a rank event: a head service's name, share of total
/// volume and category label — exactly the fields a `RANK` body line
/// carries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct RankEntry {
    /// Service name.
    pub name: String,
    /// Share of the direction's total volume.
    pub share: f64,
    /// Category display label.
    pub category: String,
}

impl RankEntry {
    /// Renders this entry exactly as the corresponding `RANK` body line —
    /// what makes "replay the subscription" and "poll the snapshot"
    /// comparable byte for byte.
    pub fn protocol_line(&self) -> String {
        format!("{} {:e} {}", self.name, self.share, self.category)
    }
}

/// One framed delta event of a subscription stream.
///
/// `#[non_exhaustive]`: new event kinds are non-breaking; parse via
/// [`DeltaEvent::parse_wire`] and render via [`DeltaEvent::to_wire`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeltaEvent {
    /// The observed frontier advanced (lexicographically on
    /// `(week, hour)`) or the run completed.
    Watermark {
        /// Ring week (`0`-based).
        week: usize,
        /// Observed frontier within the week, hours.
        hour: usize,
        /// Whether the final scheduled week has fully closed.
        complete: bool,
    },
    /// The state version moved (coalesced: one per publish round).
    Version {
        /// Current state version.
        version: u64,
    },
    /// A direction's head ranking changed order (always also emitted
    /// once at completion, carrying the final shares).
    Rank {
        /// Direction ranked.
        dir: Direction,
        /// Positions whose service differs from the previously published
        /// ranking (= the churn; `entries.len()` on a baseline).
        churn: usize,
        /// The full head ranking, best first.
        entries: Vec<RankEntry>,
    },
    /// The hour-lag autocorrelation statistic was re-derived after a
    /// watermark advance.
    Autocorr {
        /// Direction measured.
        dir: Direction,
        /// Hour lag ([`AUTOCORR_LAG_HOURS`]).
        lag: usize,
        /// Observed window the statistic was computed over, hours.
        window: usize,
        /// Mean lag autocorrelation over the head services (NaN-free:
        /// services without a defined value are excluded).
        mean: f64,
    },
    /// The stream is over: the study completed and every delta has been
    /// delivered. Always delivered regardless of the topic filter.
    End {
        /// Final state version.
        version: u64,
    },
}

impl DeltaEvent {
    /// The topic this event belongs to (`None` for [`DeltaEvent::End`],
    /// which bypasses filtering).
    pub fn topic(&self) -> Option<Topic> {
        match self {
            DeltaEvent::Watermark { .. } => Some(Topic::Watermark),
            DeltaEvent::Version { .. } => Some(Topic::Version),
            DeltaEvent::Rank { .. } => Some(Topic::Rank),
            DeltaEvent::Autocorr { .. } => Some(Topic::Autocorr),
            DeltaEvent::End { .. } => None,
        }
    }

    /// Renders the wire payload (everything after `EVENT <seq> `).
    ///
    /// Floats use `{:e}` — Rust's round-trip-exact float notation — so a
    /// parsed event reconstructs the published value bit for bit.
    pub fn to_wire(&self) -> String {
        match self {
            DeltaEvent::Watermark { week, hour, complete } => {
                format!("watermark week {week} hour {hour} complete {complete}")
            }
            DeltaEvent::Version { version } => format!("version {version}"),
            DeltaEvent::Rank { dir, churn, entries } => {
                let body = if entries.is_empty() {
                    "-".to_string()
                } else {
                    entries
                        .iter()
                        .map(|e| format!("{}={:e}={}", e.name, e.share, e.category))
                        .collect::<Vec<String>>()
                        .join("|")
                };
                format!("rank {} churn {churn} {body}", dir_token(*dir))
            }
            DeltaEvent::Autocorr { dir, lag, window, mean } => {
                format!("autocorr {} lag {lag} window {window} mean {mean:e}", dir_token(*dir))
            }
            DeltaEvent::End { version } => format!("end {version}"),
        }
    }

    /// Parses a wire payload rendered by [`DeltaEvent::to_wire`].
    pub fn parse_wire(payload: &str) -> Result<DeltaEvent, String> {
        let mut tokens = payload.split_whitespace();
        let kind = tokens.next().ok_or_else(|| "empty event payload".to_string())?;
        let mut expect = |name: &str| {
            tokens.next().ok_or_else(|| format!("bad event: truncated {kind} (missing {name})"))
        };
        let event = match kind {
            "watermark" => {
                expect("week keyword")?;
                let week = parse_num(expect("week")?, "week")?;
                expect("hour keyword")?;
                let hour = parse_num(expect("hour")?, "hour")?;
                expect("complete keyword")?;
                let complete = expect("complete")?
                    .parse::<bool>()
                    .map_err(|_| "bad event: watermark complete flag".to_string())?;
                DeltaEvent::Watermark { week, hour, complete }
            }
            "version" => {
                let version = parse_num(expect("version")?, "version")?;
                DeltaEvent::Version { version }
            }
            // Rank payloads are parsed off the raw tail, not the token
            // stream: service names and category labels contain spaces.
            "rank" => return parse_rank(payload),
            "autocorr" => {
                let dir = parse_dir(expect("dir")?)?;
                expect("lag keyword")?;
                let lag = parse_num(expect("lag")?, "lag")?;
                expect("window keyword")?;
                let window = parse_num(expect("window")?, "window")?;
                expect("mean keyword")?;
                let mean = expect("mean")?
                    .parse::<f64>()
                    .map_err(|_| "bad event: autocorr mean".to_string())?;
                DeltaEvent::Autocorr { dir, lag, window, mean }
            }
            "end" => DeltaEvent::End { version: parse_num(expect("version")?, "version")? },
            other => return Err(format!("bad event: unknown kind {other:?}")),
        };
        Ok(event)
    }
}

/// The wire tokens a rank event must not contain inside a service name
/// or category: [`DeltaEvent::to_wire`] separates entries with `|`,
/// fields with `=` and events never span lines. The standard catalog
/// satisfies this (names and labels use letters, digits, spaces and
/// `/`), pinned by a unit test below.
fn parse_num<T: std::str::FromStr>(token: &str, what: &str) -> Result<T, String> {
    token.parse::<T>().map_err(|_| format!("bad event: {what} {token:?}"))
}

/// Parses a `rank` payload off the raw string: the entry body is taken
/// verbatim after the churn token (service names and category labels
/// contain spaces, so whitespace tokenization would shred it).
fn parse_rank(payload: &str) -> Result<DeltaEvent, String> {
    let truncated = || "bad event: truncated rank".to_string();
    let rest = payload.strip_prefix("rank ").ok_or_else(truncated)?;
    let (dir_tok, rest) = rest.split_once(' ').ok_or_else(truncated)?;
    let dir = parse_dir(dir_tok)?;
    let rest = rest.strip_prefix("churn ").ok_or_else(truncated)?;
    let (churn_tok, body) = rest.split_once(' ').ok_or_else(truncated)?;
    let churn = parse_num(churn_tok, "churn")?;
    let mut entries = Vec::new();
    if body != "-" {
        for part in body.split('|') {
            let mut fields = part.splitn(3, '=');
            let name = fields.next().unwrap_or_default();
            let share =
                fields.next().ok_or_else(|| format!("bad event: rank entry {part:?}"))?;
            let category =
                fields.next().ok_or_else(|| format!("bad event: rank entry {part:?}"))?;
            entries.push(RankEntry {
                name: name.to_string(),
                share: share
                    .parse::<f64>()
                    .map_err(|_| format!("bad event: rank share {share:?}"))?,
                category: category.to_string(),
            });
        }
    }
    Ok(DeltaEvent::Rank { dir, churn, entries })
}

/// What a subscriber queue holds besides events.
#[derive(Debug, Default)]
struct SubscriberQueue {
    queue: VecDeque<(u64, DeltaEvent)>,
    /// Next sequence number to assign (per subscriber; drops leave gaps).
    next_seq: u64,
}

/// One client's subscription: a bounded event queue the publisher pushes
/// into and the connection's writer thread drains.
#[derive(Debug)]
pub struct Subscriber {
    topics: Vec<Topic>,
    inner: Mutex<SubscriberQueue>,
    cv: Condvar,
    /// Set once the publisher has sent this subscriber its baseline.
    primed: AtomicBool,
    lagged: AtomicU64,
}

impl Subscriber {
    fn new(topics: Vec<Topic>) -> Subscriber {
        Subscriber {
            topics,
            inner: Mutex::new(SubscriberQueue::default()),
            cv: Condvar::new(),
            primed: AtomicBool::new(false),
            lagged: AtomicU64::new(0),
        }
    }

    /// The topics this subscription selected.
    pub fn topics(&self) -> &[Topic] {
        &self.topics
    }

    /// Events dropped because the queue was full when the publisher
    /// tried to push (also counted on `serve.subscriber_lagged`).
    pub fn lagged(&self) -> u64 {
        self.lagged.load(Ordering::Relaxed)
    }

    /// Offers one event: filtered by topic, then enqueued — or, if the
    /// queue is at [`SUBSCRIBER_QUEUE_EVENTS`], dropped and counted.
    /// Never blocks beyond the queue mutex.
    fn offer(&self, event: &DeltaEvent) {
        if let Some(topic) = event.topic() {
            if !self.topics.contains(&topic) {
                return;
            }
        }
        let mut inner = self.inner.lock().expect("subscriber queue poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.queue.len() >= SUBSCRIBER_QUEUE_EVENTS {
            drop(inner);
            self.lagged.fetch_add(1, Ordering::Relaxed);
            mobilenet_obs::add("serve.subscriber_lagged", 1);
            return;
        }
        inner.queue.push_back((seq, event.clone()));
        drop(inner);
        self.cv.notify_all();
    }

    /// Pops the next queued event, waiting at most `timeout` — `None` on
    /// timeout so the caller can re-check its stop flag.
    pub fn pop_wait(&self, timeout: Duration) -> Option<(u64, DeltaEvent)> {
        let mut inner = self.inner.lock().expect("subscriber queue poisoned");
        if inner.queue.is_empty() {
            let (guard, _) =
                self.cv.wait_timeout(inner, timeout).expect("subscriber queue poisoned");
            inner = guard;
        }
        inner.queue.pop_front()
    }

    /// Wakes a blocked [`pop_wait`](Subscriber::pop_wait) without
    /// queueing anything (stop-flag propagation).
    pub fn wake(&self) {
        self.cv.notify_all();
    }

    fn primed(&self) -> bool {
        self.primed.load(Ordering::Acquire)
    }

    fn set_primed(&self) {
        self.primed.store(true, Ordering::Release);
    }
}

/// The fan-out point of one study's delta stream: the set of live
/// subscribers the publisher loop pushes into.
#[derive(Debug, Default)]
pub struct DeltaHub {
    subscribers: Mutex<Vec<Arc<Subscriber>>>,
}

impl DeltaHub {
    /// A hub with no subscribers.
    pub fn new() -> DeltaHub {
        DeltaHub::default()
    }

    /// Registers a new subscription and returns its queue handle.
    pub fn subscribe(&self, topics: Vec<Topic>) -> Arc<Subscriber> {
        let sub = Arc::new(Subscriber::new(topics));
        let mut subs = self.subscribers.lock().expect("subscriber list poisoned");
        subs.push(sub.clone());
        mobilenet_obs::add("serve.subscriptions", 1);
        mobilenet_obs::gauge("serve.subscribers", subs.len() as f64);
        sub
    }

    /// Removes a subscription (by handle identity).
    pub fn unsubscribe(&self, sub: &Arc<Subscriber>) {
        let mut subs = self.subscribers.lock().expect("subscriber list poisoned");
        subs.retain(|s| !Arc::ptr_eq(s, sub));
        mobilenet_obs::gauge("serve.subscribers", subs.len() as f64);
    }

    /// Whether any subscription is live.
    pub fn has_subscribers(&self) -> bool {
        !self.subscribers.lock().expect("subscriber list poisoned").is_empty()
    }

    fn snapshot_subs(&self) -> Vec<Arc<Subscriber>> {
        self.subscribers.lock().expect("subscriber list poisoned").clone()
    }

    fn has_unprimed(&self) -> bool {
        self.subscribers
            .lock()
            .expect("subscriber list poisoned")
            .iter()
            .any(|s| !s.primed())
    }

    /// Wakes every subscriber's queue wait (stop-flag propagation).
    pub fn wake_all(&self) {
        for sub in self.snapshot_subs() {
            sub.wake();
        }
    }
}

/// What the publisher remembers between rounds to derive deltas.
#[derive(Default)]
struct PublishMemory {
    version: Option<u64>,
    mark: Option<(usize, usize, bool)>,
    /// Last published ranking order per direction (service names).
    rank_names: [Option<Vec<String>>; 2],
    autocorr_bits: [Option<u64>; 2],
    ended: bool,
}

fn dir_slot(dir: Direction) -> usize {
    match dir {
        Direction::Down => 0,
        Direction::Up => 1,
    }
}

/// Builds the full head ranking of one direction as rank entries.
fn rank_entries(state: &LiveState, snap: &crate::live::LiveSnapshot, dir: Direction) -> Vec<RankEntry> {
    let head = state.catalog().head();
    top_k_services(&snap.dataset, head, dir, head.len())
        .iter()
        .map(|s| RankEntry {
            name: s.name.to_string(),
            share: s.share_of_total,
            category: s.category.label().to_string(),
        })
        .collect()
}

/// Mean hour-lag autocorrelation over the head services' national
/// series within the observed window; `None` until the window can
/// support the lag.
fn mean_autocorr(state: &LiveState, snap: &crate::live::LiveSnapshot, dir: Direction) -> Option<f64> {
    let head_len = state.catalog().head().len();
    let window = snap.watermark_hour;
    let mut sum = 0.0;
    let mut n = 0usize;
    for service in 0..head_len {
        let series = snap.dataset.national_series_window(dir, service, 0, window);
        if let Some(r) = hour_lag_autocorr(series, AUTOCORR_LAG_HOURS) {
            sum += r;
            n += 1;
        }
    }
    (n > 0).then(|| sum / n as f64)
}

/// One study's publisher loop: waits for version notifications, builds
/// the round's delta events from the version-cached snapshot, and offers
/// them to every subscriber (baseline first for fresh subscriptions).
/// Runs until `stop`; spawned by the registry at registration.
pub(crate) fn publish_loop(state: &LiveState, hub: &DeltaHub, stop: &AtomicBool) {
    let mut memory = PublishMemory::default();
    loop {
        if stop.load(Ordering::SeqCst) {
            hub.wake_all();
            return;
        }
        if !hub.has_subscribers() {
            state.notifier().wait_timeout(PUBLISH_TICK);
            continue;
        }
        let version = state.version();
        let fresh = hub.has_unprimed();
        if !fresh && memory.version == Some(version) {
            state.notifier().wait_timeout(PUBLISH_TICK);
            continue;
        }
        publish_round(state, hub, &mut memory, version);
    }
}

/// One publish round: derive the deltas at `version` and fan them out.
fn publish_round(state: &LiveState, hub: &DeltaHub, memory: &mut PublishMemory, version: u64) {
    let snap = state.snapshot();
    let mark = (snap.week, snap.watermark_hour, snap.complete);
    // Lexicographic advance only: a roll-over transiently exposes the
    // reset watermark before the week counter, which must not be
    // published as a regression.
    let mark_advanced = memory.mark.is_none_or(|(w, h, c)| {
        (snap.week, snap.watermark_hour) > (w, h) || (snap.complete && !c)
    });
    let completing = snap.complete && !memory.ended;

    let mut round: Vec<DeltaEvent> = Vec::new();
    if mark_advanced {
        round.push(DeltaEvent::Watermark { week: mark.0, hour: mark.1, complete: mark.2 });
    }
    if memory.version != Some(version) {
        round.push(DeltaEvent::Version { version });
    }
    let mut baseline: Vec<DeltaEvent> =
        vec![DeltaEvent::Watermark { week: mark.0, hour: mark.1, complete: mark.2 }, DeltaEvent::Version { version }];
    for dir in [Direction::Down, Direction::Up] {
        let slot = dir_slot(dir);
        let entries = rank_entries(state, &snap, dir);
        let names: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
        let churn = match &memory.rank_names[slot] {
            None => entries.len(),
            Some(prev) => names
                .iter()
                .enumerate()
                .filter(|(i, name)| prev.get(*i) != Some(name))
                .count()
                .max(prev.len().saturating_sub(names.len())),
        };
        if churn > 0 || completing {
            round.push(DeltaEvent::Rank { dir, churn, entries: entries.clone() });
        }
        baseline.push(DeltaEvent::Rank { dir, churn: entries.len(), entries });
        memory.rank_names[slot] = Some(names);

        if mark_advanced || completing {
            if let Some(mean) = mean_autocorr(state, &snap, dir) {
                let event = DeltaEvent::Autocorr {
                    dir,
                    lag: AUTOCORR_LAG_HOURS,
                    window: snap.watermark_hour,
                    mean,
                };
                if memory.autocorr_bits[slot] != Some(mean.to_bits()) {
                    round.push(event.clone());
                }
                baseline.push(event);
                memory.autocorr_bits[slot] = Some(mean.to_bits());
            }
        }
    }
    if completing {
        round.push(DeltaEvent::End { version });
    }
    if snap.complete {
        baseline.push(DeltaEvent::End { version });
        memory.ended = true;
    }

    let mut offered = 0u64;
    for sub in hub.snapshot_subs() {
        let events = if sub.primed() { &round } else { &baseline };
        for event in events {
            sub.offer(event);
            offered += 1;
        }
        sub.set_primed();
    }
    mobilenet_obs::add("serve.events", offered);
    memory.version = Some(version);
    memory.mark = Some(mark);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topics_parse_lists_and_reject_unknown() {
        assert_eq!(Topic::parse_list("all").unwrap(), Topic::ALL.to_vec());
        assert_eq!(
            Topic::parse_list("rank,watermark").unwrap(),
            vec![Topic::Rank, Topic::Watermark]
        );
        assert_eq!(Topic::parse_list("rank,rank").unwrap(), vec![Topic::Rank]);
        let err = Topic::parse_list("rank,nope").unwrap_err();
        assert!(err.contains("bad SUBSCRIBE: nope"), "unexpected message {err:?}");
    }

    #[test]
    fn events_round_trip_the_wire_codec_bit_for_bit() {
        let events = vec![
            DeltaEvent::Watermark { week: 2, hour: 167, complete: false },
            DeltaEvent::Version { version: 991 },
            DeltaEvent::Rank {
                dir: Direction::Down,
                churn: 3,
                entries: vec![
                    RankEntry {
                        name: "Facebook Video".into(),
                        share: 0.123456789012345e-1,
                        category: "video streaming".into(),
                    },
                    RankEntry {
                        name: "news/web portal".into(),
                        share: f64::MIN_POSITIVE,
                        category: "news/web".into(),
                    },
                ],
            },
            DeltaEvent::Autocorr {
                dir: Direction::Up,
                lag: 24,
                window: 168,
                mean: -0.25 - f64::EPSILON,
            },
            DeltaEvent::End { version: 1000 },
        ];
        for event in events {
            let wire = event.to_wire();
            let parsed = DeltaEvent::parse_wire(&wire).expect("codec round-trips");
            assert_eq!(parsed, event, "wire {wire:?}");
        }
        let empty = DeltaEvent::Rank { dir: Direction::Up, churn: 0, entries: vec![] };
        assert_eq!(DeltaEvent::parse_wire(&empty.to_wire()).unwrap(), empty);
        assert!(DeltaEvent::parse_wire("rank dl churn x y").is_err());
        assert!(DeltaEvent::parse_wire("nope 1").is_err());
    }

    #[test]
    fn catalog_tokens_never_collide_with_the_rank_wire_separators() {
        let catalog = mobilenet_traffic::ServiceCatalog::standard(16);
        for spec in catalog.head() {
            assert!(!spec.name.contains(['|', '=']), "service name {:?}", spec.name);
            let label = spec.category.label();
            assert!(!label.contains(['|', '=']), "category label {label:?}");
        }
    }

    #[test]
    fn slow_subscribers_drop_and_count_instead_of_blocking() {
        let hub = DeltaHub::new();
        let sub = hub.subscribe(vec![Topic::Version]);
        for v in 0..(SUBSCRIBER_QUEUE_EVENTS as u64 + 10) {
            sub.offer(&DeltaEvent::Version { version: v });
        }
        assert_eq!(sub.lagged(), 10, "events past the bound are dropped and counted");
        // Sequence numbers keep advancing across drops, so the consumer
        // sees the gap.
        let mut seen = Vec::new();
        while let Some((seq, _)) = sub.pop_wait(Duration::from_millis(1)) {
            seen.push(seq);
        }
        assert_eq!(seen.len(), SUBSCRIBER_QUEUE_EVENTS);
        assert_eq!(seen.first().copied(), Some(0));
        assert_eq!(seen.last().copied(), Some(SUBSCRIBER_QUEUE_EVENTS as u64 - 1));
        // Topic filtering never consumes sequence numbers.
        sub.offer(&DeltaEvent::Watermark { week: 0, hour: 1, complete: false });
        assert!(sub.pop_wait(Duration::from_millis(1)).is_none());
        hub.unsubscribe(&sub);
        assert!(!hub.has_subscribers());
    }
}
