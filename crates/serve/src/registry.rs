//! The multi-study registry: named [`LiveState`]s served side by side.
//!
//! A [`StudyRegistry`] owns one [`StudyEntry`] per registered study —
//! its live state, its delta hub, its ingestion thread — plus the
//! server-wide stop flag. Studies register at startup (CLI
//! `serve --study`) or at runtime via the admin `START` verb; every
//! registration spawns that study's **publisher thread**
//! ([`crate::subscribe::publish_loop`]), so subscriptions work the
//! moment the study exists, even before (or after) its ingestion runs.
//!
//! Connections select a study per session (`USE`); when exactly one
//! study is registered, queries auto-select it — which is what keeps
//! v1 single-study clients working unchanged.

use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use mobilenet_core::{Scale, StudyConfig};

use crate::live::LiveState;
use crate::subscribe::{publish_loop, DeltaHub};

/// One registered study: a named live state plus its delta hub and
/// ingestion driver.
pub struct StudyEntry {
    name: String,
    scale: String,
    weeks: usize,
    state: Arc<LiveState>,
    hub: Arc<DeltaHub>,
    /// The ingestion thread, once started (idempotence guard).
    ingest: Mutex<Option<JoinHandle<()>>>,
}

impl StudyEntry {
    /// The registry name of this study.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scale label this study was registered under.
    pub fn scale(&self) -> &str {
        &self.scale
    }

    /// Scheduled ring weeks of this study's run.
    pub fn weeks(&self) -> usize {
        self.weeks
    }

    /// The study's live state.
    pub fn state(&self) -> &Arc<LiveState> {
        &self.state
    }

    /// The study's delta hub (subscription fan-out point).
    pub fn hub(&self) -> &Arc<DeltaHub> {
        &self.hub
    }

    /// A point-in-time description of this study (the `LIST` body).
    pub fn info(&self) -> StudyInfo {
        StudyInfo {
            name: self.name.clone(),
            scale: self.scale.clone(),
            seed: self.state.seed(),
            weeks: self.weeks,
            week: self.state.week(),
            watermark_hour: self.state.watermark_hour(),
            complete: self.state.complete(),
            version: self.state.version(),
        }
    }
}

impl std::fmt::Debug for StudyEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StudyEntry")
            .field("name", &self.name)
            .field("scale", &self.scale)
            .field("weeks", &self.weeks)
            .finish_non_exhaustive()
    }
}

/// A point-in-time description of one registered study — what `LIST`
/// reports, one study per body line.
///
/// `#[non_exhaustive]`: new fields are non-breaking; construct via
/// [`StudyEntry::info`] or [`StudyInfo::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct StudyInfo {
    /// Registry name.
    pub name: String,
    /// Scale label (`small`/`medium`/`france`/`national`).
    pub scale: String,
    /// Base demand/capture seed.
    pub seed: u64,
    /// Scheduled ring weeks.
    pub weeks: usize,
    /// Ring week currently folding.
    pub week: usize,
    /// Observed frontier within the current week, hours.
    pub watermark_hour: usize,
    /// Whether the final week has fully closed.
    pub complete: bool,
    /// Current state version.
    pub version: u64,
}

impl StudyInfo {
    /// Renders the `LIST` body line of this study.
    pub fn protocol_line(&self) -> String {
        format!(
            "{} scale {} seed {} weeks {} week {} hour {} complete {} version {}",
            self.name,
            self.scale,
            self.seed,
            self.weeks,
            self.week,
            self.watermark_hour,
            self.complete,
            self.version
        )
    }

    /// Parses a `LIST` body line (inverse of
    /// [`protocol_line`](StudyInfo::protocol_line)).
    pub fn parse(line: &str) -> Result<StudyInfo, String> {
        let mut tokens = line.split_whitespace();
        let name = tokens.next().ok_or_else(|| "empty study line".to_string())?.to_string();
        let mut field = |key: &str| -> Result<&str, String> {
            match (tokens.next(), tokens.next()) {
                (Some(k), Some(v)) if k == key => Ok(v),
                _ => Err(format!("bad study line: missing {key}")),
            }
        };
        let scale = field("scale")?.to_string();
        let seed = field("seed")?.parse().map_err(|_| "bad study line: seed".to_string())?;
        let weeks = field("weeks")?.parse().map_err(|_| "bad study line: weeks".to_string())?;
        let week = field("week")?.parse().map_err(|_| "bad study line: week".to_string())?;
        let watermark_hour =
            field("hour")?.parse().map_err(|_| "bad study line: hour".to_string())?;
        let complete =
            field("complete")?.parse().map_err(|_| "bad study line: complete".to_string())?;
        let version =
            field("version")?.parse().map_err(|_| "bad study line: version".to_string())?;
        Ok(StudyInfo { name, scale, seed, weeks, week, watermark_hour, complete, version })
    }
}

/// The set of studies one server instance serves, with the server-wide
/// stop flag and the per-study publisher threads.
#[derive(Debug, Default)]
pub struct StudyRegistry {
    entries: Mutex<Vec<Arc<StudyEntry>>>,
    stop: AtomicBool,
    publishers: Mutex<Vec<JoinHandle<()>>>,
}

impl StudyRegistry {
    /// An empty registry.
    pub fn new() -> Arc<StudyRegistry> {
        Arc::new(StudyRegistry::default())
    }

    /// Registers `state` under `name` and spawns its publisher thread.
    ///
    /// `scale` is a display label; `weeks` schedules the ring
    /// ([`LiveState::set_weeks`]). Names must be unique, non-empty and
    /// contain no whitespace (they are wire tokens).
    pub fn register_state(
        self: &Arc<Self>,
        name: &str,
        scale: &str,
        state: Arc<LiveState>,
        weeks: usize,
    ) -> Result<Arc<StudyEntry>, String> {
        if name.is_empty() || name.chars().any(char::is_whitespace) {
            return Err(format!("bad study name {name:?} (one non-empty wire token)"));
        }
        // Only reschedule when the registration actually changes the
        // week count: registering an externally-driven state (the v1
        // `spawn_server` path) must not fail just because its ingestion
        // already started.
        if weeks != state.weeks() {
            state.set_weeks(weeks)?;
        }
        let mut entries = self.entries.lock().expect("study registry poisoned");
        if entries.iter().any(|e| e.name == name) {
            return Err(format!("study {name} already registered"));
        }
        let entry = Arc::new(StudyEntry {
            name: name.to_string(),
            scale: scale.to_string(),
            weeks,
            state,
            hub: Arc::new(DeltaHub::new()),
            ingest: Mutex::new(None),
        });
        entries.push(entry.clone());
        drop(entries);
        // Initialize the lag counter at 0 so health checks can assert on
        // it even when no subscriber ever lagged.
        mobilenet_obs::add("serve.subscriber_lagged", 0);
        mobilenet_obs::gauge("serve.studies", self.len() as f64);
        let publisher = {
            let registry = self.clone();
            let entry = entry.clone();
            std::thread::spawn(move || {
                publish_loop(entry.state(), entry.hub(), &registry.stop);
            })
        };
        self.publishers.lock().expect("publisher list poisoned").push(publisher);
        Ok(entry)
    }

    /// Registers a study built from a [`StudyConfig`] (label `scale`).
    pub fn register_config(
        self: &Arc<Self>,
        name: &str,
        scale: &str,
        config: &StudyConfig,
        seed: u64,
        weeks: usize,
    ) -> Result<Arc<StudyEntry>, String> {
        let state = LiveState::from_config(config, seed)?;
        self.register_state(name, scale, state, weeks)
    }

    /// Registers a study from a scale token (`small`/`medium`/`france`/
    /// `national`) — the `START` verb's entry point.
    pub fn register_scale(
        self: &Arc<Self>,
        name: &str,
        scale: &str,
        seed: u64,
        weeks: usize,
    ) -> Result<Arc<StudyEntry>, String> {
        let scale = Scale::from_str(scale).map_err(|e| e.to_string())?;
        self.register_config(name, scale.name(), &scale.config(), seed, weeks)
    }

    /// Starts a registered study's ingestion on a dedicated thread
    /// (errors if it already started). Ingestion failures are counted on
    /// `serve.ingest_errors`; the study stays queryable at its last
    /// state.
    pub fn start(&self, entry: &Arc<StudyEntry>) -> Result<(), String> {
        let mut ingest = entry.ingest.lock().expect("ingest handle poisoned");
        if ingest.is_some() {
            return Err(format!("study {} already started", entry.name));
        }
        let state = entry.state.clone();
        let weeks = entry.weeks;
        *ingest = Some(std::thread::spawn(move || {
            for _ in 0..weeks {
                if let Err(e) = state.run_next_week() {
                    mobilenet_obs::add("serve.ingest_errors", 1);
                    eprintln!("mobilenet-serve: ingestion failed: {e}");
                    return;
                }
            }
        }));
        Ok(())
    }

    /// Looks a study up by name.
    pub fn get(&self, name: &str) -> Option<Arc<StudyEntry>> {
        self.entries
            .lock()
            .expect("study registry poisoned")
            .iter()
            .find(|e| e.name == name)
            .cloned()
    }

    /// The only registered study, when exactly one exists — the
    /// v1-compatible auto-selection.
    pub fn single(&self) -> Option<Arc<StudyEntry>> {
        let entries = self.entries.lock().expect("study registry poisoned");
        (entries.len() == 1).then(|| entries[0].clone())
    }

    /// Registered study count.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("study registry poisoned").len()
    }

    /// Whether no study is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time descriptions of every registered study, in
    /// registration order (the `LIST` body).
    pub fn list(&self) -> Vec<StudyInfo> {
        self.entries
            .lock()
            .expect("study registry poisoned")
            .iter()
            .map(|e| e.info())
            .collect()
    }

    /// Raises the server-wide stop flag and wakes everything that might
    /// be waiting on it: publisher loops (notifier waits) and streaming
    /// subscriber writers (queue waits).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for entry in self.entries.lock().expect("study registry poisoned").iter() {
            entry.state.notifier().notify();
            entry.hub.wake_all();
        }
    }

    /// Whether a stop was requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// The stop flag, for loops that poll it directly.
    pub(crate) fn stop_flag(&self) -> &AtomicBool {
        &self.stop
    }

    /// Stops and joins every publisher and ingestion thread. An
    /// in-flight week runs to completion first (ingestion has no
    /// mid-week cancellation point); queries served elsewhere remain
    /// valid throughout.
    pub fn shutdown(&self) {
        self.request_stop();
        for publisher in self.publishers.lock().expect("publisher list poisoned").drain(..) {
            let _ = publisher.join();
        }
        let entries: Vec<Arc<StudyEntry>> =
            self.entries.lock().expect("study registry poisoned").clone();
        for entry in entries {
            let handle = entry.ingest.lock().expect("ingest handle poisoned").take();
            if let Some(handle) = handle {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_info_round_trips_its_protocol_line() {
        let info = StudyInfo {
            name: "alpha".into(),
            scale: "small".into(),
            seed: 42,
            weeks: 3,
            week: 1,
            watermark_hour: 77,
            complete: false,
            version: 991,
        };
        let line = info.protocol_line();
        assert_eq!(StudyInfo::parse(&line).unwrap(), info);
        assert!(StudyInfo::parse("alpha scale small seed x").is_err());
    }

    #[test]
    fn registry_rejects_duplicate_and_malformed_names() {
        let registry = StudyRegistry::new();
        let config = StudyConfig::small();
        registry.register_config("alpha", "small", &config, 1, 1).expect("first registration");
        let err = registry.register_config("alpha", "small", &config, 2, 1).unwrap_err();
        assert!(err.contains("already registered"), "unexpected message {err:?}");
        assert!(registry.register_config("two words", "small", &config, 2, 1).is_err());
        assert!(registry.register_config("", "small", &config, 2, 1).is_err());
        assert!(registry.register_scale("beta", "galactic", 1, 1).is_err());
        assert_eq!(registry.len(), 1);
        assert!(registry.single().is_some());
        registry.shutdown();
    }
}
