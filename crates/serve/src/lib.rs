//! Always-on analytics over the mobilenet streaming engine.
//!
//! The batch pipeline answers questions after a full week has been
//! collected; this crate answers them **while** the week streams.
//! [`LiveState`] consumes an unbounded
//! [`RecordSource`](mobilenet_netsim::RecordSource) through the same
//! chunked, bounded-memory machinery as
//! [`collect_with_options`](mobilenet_netsim::collect_with_options),
//! maintaining per-shard partial aggregates, an observed-frontier
//! watermark and a monotone state version. [`LiveState::snapshot`]
//! materialises a consistent [`LiveSnapshot`] at any moment; once
//! ingestion completes the snapshot is bit-identical to the batch
//! output on the same `(config, seed)` at any thread count and under
//! any fault plan.
//!
//! [`spawn_server`] exposes snapshots over a small TCP line protocol
//! ([`SnapshotQuery`] grammar in [`query`]) so many concurrent clients
//! can ask for rankings, pairwise spatial r², topical peaks, series
//! windows, ingestion stats and health while ingestion is still
//! running:
//!
//! ```no_run
//! use mobilenet_core::StudyConfig;
//! use mobilenet_serve::{spawn_server, LiveState};
//!
//! let state = LiveState::from_config(&StudyConfig::small(), 7).unwrap();
//! let mut server = spawn_server(state.clone(), "127.0.0.1:0").unwrap();
//! println!("listening on {}", server.addr());
//! state.run_ingestion().unwrap();
//! // ... serve until told otherwise ...
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod live;
pub mod query;
pub mod server;

pub use live::{LiveSnapshot, LiveState};
pub use query::{answer, Command, SnapshotQuery};
pub use server::{spawn_server, ServerHandle, MAX_LINE_BYTES};
