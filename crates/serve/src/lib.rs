//! Always-on analytics over the mobilenet streaming engine.
//!
//! The batch pipeline answers questions after a full week has been
//! collected; this crate answers them **while** the week streams.
//! [`LiveState`] consumes an unbounded
//! [`RecordSource`](mobilenet_netsim::RecordSource) through the same
//! chunked, bounded-memory machinery as
//! [`collect_with_options`](mobilenet_netsim::collect_with_options),
//! maintaining per-shard partial aggregates, an observed-frontier
//! watermark and a monotone state version. [`LiveState::snapshot`]
//! materialises a consistent [`LiveSnapshot`] at any moment; once
//! ingestion completes the snapshot is bit-identical to the batch
//! output on the same `(config, seed)` at any thread count and under
//! any fault plan. Multi-week runs ([`LiveState::run_weeks`]) fold every
//! week into the same 168-hour ring in the memory of a one-week run,
//! retiring each expired week at roll-over.
//!
//! [`spawn_registry_server`] serves a whole [`StudyRegistry`] — several
//! named live studies side by side — over the sessioned
//! `mobilenet-serve/v2` TCP line protocol (grammar in [`query`]):
//! `HELLO`/`LIST`/`USE` select a study per connection, snapshot verbs
//! answer against it, and `SUBSCRIBE` streams framed [`DeltaEvent`]s
//! (watermark advances, version bumps, rank churn, hour-lag
//! autocorrelation) with bounded, drop-and-count backpressure.
//! [`spawn_server`] keeps the single-study v1 entry point; [`Client`]
//! is the typed counterpart for talking to either:
//!
//! ```no_run
//! use mobilenet_core::StudyConfig;
//! use mobilenet_serve::{spawn_server, Client, LiveState, Topic};
//!
//! let state = LiveState::from_config(&StudyConfig::small(), 7).unwrap();
//! let mut server = spawn_server(state.clone(), "127.0.0.1:0").unwrap();
//! let ingest = std::thread::spawn(move || state.run_ingestion());
//!
//! let mut client = Client::connect(&server.addr().to_string()).unwrap();
//! let hello = client.hello().unwrap();
//! assert_eq!(hello.version, mobilenet_serve::PROTOCOL_VERSION);
//! for event in client.subscribe(vec![Topic::Watermark]).unwrap() {
//!     println!("{:?}", event.unwrap());
//! }
//!
//! ingest.join().unwrap().unwrap();
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod live;
pub mod query;
pub mod registry;
pub mod server;
pub mod session;
pub mod subscribe;

pub use client::{Client, ClientError, Hello, Subscription};
pub use live::{week_seed, LiveSnapshot, LiveState, VersionNotifier};
pub use query::{answer, hour_lag_autocorr, Command, SnapshotQuery, PROTOCOL_VERSION};
pub use registry::{StudyEntry, StudyInfo, StudyRegistry};
pub use server::{spawn_registry_server, spawn_server, ServerHandle, MAX_LINE_BYTES};
pub use session::Session;
pub use subscribe::{
    DeltaEvent, DeltaHub, RankEntry, Subscriber, Topic, AUTOCORR_LAG_HOURS,
    SUBSCRIBER_QUEUE_EVENTS,
};
