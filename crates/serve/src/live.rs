//! Incremental aggregation over an unbounded record stream.
//!
//! [`LiveState`] is the always-on counterpart of
//! [`collect_with_options`](mobilenet_netsim::collect_with_options): it
//! owns the demand model and measurement apparatus, streams every shard
//! of the synthetic week through bounded chunks
//! ([`stream_shard_chunked`]) into per-shard partial datasets, and
//! answers snapshot queries at any point during ingestion.
//!
//! # Bit-identity contract
//!
//! A snapshot taken after ingestion completes is **bit-identical** to the
//! batch path on the same `(config, seed)` — at any thread count and with
//! any fault plan — because the live engine replicates the batch
//! engine's operations exactly:
//!
//! * each shard's records come from the same [`Capture`]/[`SyntheticSource`]
//!   streams, chunked by the same [`ChunkSink`] budget;
//! * every flushed batch folds through the same
//!   [`aggregate_batch`] into a per-shard partial, and exactly one worker
//!   streams a given shard, so the fold order within a shard is the
//!   stream order;
//! * source-side diagnostics merge into the shard partial at shard close,
//!   exactly where the batch engine merges them;
//! * a snapshot merges the partials **in shard order** into a fresh
//!   dataset and fills the tail table from the model — the same
//!   reduction `collect_with_options` performs.
//!
//! [`ChunkSink`]: mobilenet_netsim::ChunkSink
//!
//! # The 168-hour week ring
//!
//! Multi-week runs ([`LiveState::run_weeks`]) fold every week into the
//! same 168-hour ring: week `w` streams from the derived seed
//! [`week_seed`]`(seed, w)` and lands on hours `0..168` modulo the ring,
//! while the **expired** week's contribution — its partial datasets, its
//! collection diagnostics, its watermarks — is retired at the roll-over,
//! so a four-week national replay holds exactly the accumulator and
//! chunk-buffer memory of a one-week run. Consequence (pinned by
//! `tests/week_ring.rs`): after week `w` closes, the snapshot is
//! bit-identical to a **batch** collection over the equivalent folded
//! records, i.e. `collect_with_options(model, config, options,
//! week_seed(seed, w))`. Only the streaming-engine accounting
//! ([`IngestStats`]) stays cumulative across weeks; its
//! [`cycles`](IngestStats::cycles) field counts the weeks folded.
//!
//! # Watermark semantics
//!
//! The synthetic source is *not* time-ordered — sessions sample their
//! start hour — so the watermark is an **observed frontier**, not a
//! completeness guarantee: per shard it is the highest start hour folded
//! so far, jumping to 168 when the shard's stream closes; the global
//! watermark is the minimum over shards. Within a week it is monotone and
//! reaches 168 exactly when every shard has closed; a week roll-over
//! retires it back to 0 for the incoming week (the pair
//! `(week, watermark_hour)` is what subscribers watch —
//! [`LiveSnapshot::week`]). [`LiveSnapshot::complete`] holds once the
//! *final* scheduled week has fully closed; from that point on the
//! snapshot no longer changes and equals the batch output for the final
//! week's seed.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use mobilenet_core::StudyConfig;
use mobilenet_netsim::{
    aggregate_batch, stream_shard_chunked, Capture, CollectOptions, CollectionStats, IngestError,
    IngestMeter, IngestStats, NetsimConfig, RecordSource, SyntheticSource,
};
use mobilenet_traffic::{DemandModel, ServiceCatalog, TrafficDataset, HOURS_PER_WEEK};

/// Derives the capture/session seed of week `week` of a multi-week run.
///
/// Week 0 uses the base seed unchanged — a single-week live run is
/// bit-identical to batch collection on `(config, seed)` — and later
/// weeks mix the week index through a splitmix64 finalizer so their
/// record streams are decorrelated but fully deterministic in
/// `(seed, week)`.
pub fn week_seed(base: u64, week: usize) -> u64 {
    if week == 0 {
        return base;
    }
    let mut z = base ^ (week as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A wait/notify rendezvous between the ingest path and delta
/// subscribers.
///
/// The ingest path calls [`notify`](VersionNotifier::notify) after every
/// version bump — a bare `Condvar::notify_all`, so it can never block on
/// a slow consumer. Waiters ([`crate::subscribe`]'s publisher loops) poll
/// with [`wait_timeout`](VersionNotifier::wait_timeout); because every
/// wait is timeout-bounded, a notification racing past an about-to-wait
/// consumer costs at most one tick, never a lost wake-up.
#[derive(Debug, Default)]
pub struct VersionNotifier {
    lock: Mutex<()>,
    cv: Condvar,
}

impl VersionNotifier {
    /// Wakes every waiter (non-blocking; safe from the ingest hot path).
    pub fn notify(&self) {
        self.cv.notify_all();
    }

    /// Blocks for at most `timeout` or until a notification arrives.
    pub fn wait_timeout(&self, timeout: Duration) {
        let guard = self.lock.lock().expect("notifier lock poisoned");
        let _ = self.cv.wait_timeout(guard, timeout);
    }
}

/// One shard's growing partial aggregate.
#[derive(Debug)]
struct ShardSlot {
    dataset: TrafficDataset,
    stats: CollectionStats,
}

/// Serializes the week-by-week drivers of one live state.
#[derive(Debug, Default)]
struct WeekCursor {
    /// Weeks whose ingestion has started (= the next week index to run).
    weeks_started: usize,
}

/// The shared state of one live ingestion run: per-shard partials,
/// watermarks and accounting, queryable while
/// [`run_ingestion`](LiveState::run_ingestion) (or the multi-week
/// [`run_weeks`](LiveState::run_weeks)) streams.
pub struct LiveState {
    model: DemandModel,
    netsim: NetsimConfig,
    options: CollectOptions,
    seed: u64,
    slots: Vec<Mutex<ShardSlot>>,
    /// Per-shard observed frontier: `max start_hour + 1` folded so far,
    /// `HOURS_PER_WEEK` once the shard closes.
    watermarks: Vec<AtomicU64>,
    closed_shards: AtomicUsize,
    /// Ring week currently being folded (`0`-based).
    week: AtomicUsize,
    /// Scheduled weeks of this run (default 1; set by
    /// [`set_weeks`](LiveState::set_weeks) before ingestion starts).
    weeks_total: AtomicUsize,
    /// Serializes week drivers; held across a whole week's ingestion.
    cursor: Mutex<WeekCursor>,
    /// Bumped on every fold and shard close; snapshot cache key.
    version: AtomicU64,
    /// Woken on every version bump; what delta publishers wait on.
    notifier: VersionNotifier,
    meter: IngestMeter,
    workers: AtomicUsize,
    bytes_read: AtomicU64,
    cache: Mutex<Option<(u64, Arc<LiveSnapshot>)>>,
}

/// A consistent view of the live aggregate at one moment — on a complete
/// run, bit-identical to the batch
/// [`CollectionOutput`](mobilenet_netsim::CollectionOutput) for the final
/// week's derived seed.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct LiveSnapshot {
    /// The merged dataset (tail table filled from the demand model) —
    /// the current ring content, i.e. the week being folded.
    pub dataset: TrafficDataset,
    /// Collection diagnostics of the current ring week (expired weeks'
    /// contributions are retired at roll-over).
    pub stats: CollectionStats,
    /// Streaming-engine accounting — cumulative across all weeks folded
    /// so far (`ingest.cycles` counts them).
    pub ingest: IngestStats,
    /// Global observed frontier within the current week, hours
    /// (`0..=168`); see the module docs for the exact semantics.
    pub watermark_hour: usize,
    /// Ring week this snapshot describes (`0`-based).
    pub week: usize,
    /// Scheduled weeks of the run.
    pub weeks: usize,
    /// Whether the final scheduled week has fully closed — from this
    /// point on the snapshot no longer changes and equals the batch
    /// output on `week_seed(seed, weeks - 1)`.
    pub complete: bool,
    /// The state version the snapshot was built at (monotone).
    pub version: u64,
}

impl LiveState {
    /// Builds the live state for a demand model: one empty partial per
    /// shard, nothing streamed yet.
    pub fn new(
        model: DemandModel,
        netsim: NetsimConfig,
        options: CollectOptions,
        seed: u64,
    ) -> Result<Arc<LiveState>, String> {
        netsim.validate()?;
        options.validate()?;
        let catalog = model.catalog();
        let n_head = catalog.head().len();
        let n_tail = catalog.tail_len();
        let share = model.config().subscriber_share;
        let shards = n_head;
        let slots = (0..shards)
            .map(|_| {
                Mutex::new(ShardSlot {
                    dataset: TrafficDataset::new(model.country(), n_head, n_tail, share),
                    stats: CollectionStats::default(),
                })
            })
            .collect();
        let watermarks = (0..shards).map(|_| AtomicU64::new(0)).collect();
        Ok(Arc::new(LiveState {
            model,
            netsim,
            options,
            seed,
            slots,
            watermarks,
            closed_shards: AtomicUsize::new(0),
            week: AtomicUsize::new(0),
            weeks_total: AtomicUsize::new(1),
            cursor: Mutex::new(WeekCursor::default()),
            version: AtomicU64::new(0),
            notifier: VersionNotifier::default(),
            meter: IngestMeter::new(),
            workers: AtomicUsize::new(0),
            bytes_read: AtomicU64::new(0),
            cache: Mutex::new(None),
        }))
    }

    /// [`LiveState::new`] from a [`StudyConfig`] — the same model and
    /// options a batch [`Pipeline`](mobilenet_core::Pipeline) run of that
    /// config would use, so snapshots pin against it.
    pub fn from_config(config: &StudyConfig, seed: u64) -> Result<Arc<LiveState>, String> {
        LiveState::new(
            config.demand_model(seed),
            config.netsim.clone(),
            config.collect_options(),
            seed,
        )
    }

    /// The service catalog of the demand model.
    pub fn catalog(&self) -> &ServiceCatalog {
        self.model.catalog()
    }

    /// Head-service names in dataset order.
    pub fn service_names(&self) -> Vec<&'static str> {
        self.catalog().head().iter().map(|s| s.name).collect()
    }

    /// The base seed of this run (week 0's capture/session seed).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The derived capture/session seed of ring week `week` — what a
    /// batch reference run for that week must use ([`week_seed`]).
    pub fn week_seed(&self, week: usize) -> u64 {
        week_seed(self.seed, week)
    }

    /// The notifier woken on every version bump; delta publishers wait on
    /// it instead of polling snapshots.
    pub fn notifier(&self) -> &VersionNotifier {
        &self.notifier
    }

    /// Schedules `weeks` ring weeks for this run. Must be called before
    /// any ingestion starts; [`run_weeks`](LiveState::run_weeks) calls it
    /// for you.
    pub fn set_weeks(&self, weeks: usize) -> Result<(), String> {
        if weeks == 0 {
            return Err("weeks must be at least 1".into());
        }
        let cursor = self.cursor.lock().expect("week cursor poisoned");
        if cursor.weeks_started > 0 {
            return Err("live ingestion already started".into());
        }
        self.weeks_total.store(weeks, Ordering::SeqCst);
        Ok(())
    }

    /// Streams one week through the incremental engine, fanning the
    /// shards out over the ambient `mobilenet-par` pool. Blocks until
    /// every shard closes (run it on a dedicated thread to keep serving);
    /// snapshots remain answerable throughout.
    ///
    /// Returns the final accounting; a second call is rejected (the
    /// stream was already consumed). Equivalent to
    /// [`run_weeks`](LiveState::run_weeks)`(1)`.
    pub fn run_ingestion(&self) -> Result<IngestStats, IngestError> {
        self.run_weeks(1)
    }

    /// Streams `weeks` consecutive weeks through the 168-hour ring:
    /// week `w` uses the derived seed [`week_seed`]`(seed, w)`, and each
    /// roll-over retires the expired week's partials, watermarks and
    /// collection diagnostics so memory stays that of a one-week run.
    ///
    /// Blocks until the final week closes. Rejected if ingestion already
    /// started (the streams were already consumed).
    pub fn run_weeks(&self, weeks: usize) -> Result<IngestStats, IngestError> {
        self.set_weeks(weeks).map_err(IngestError::Config)?;
        let mut last = self.ingest_stats();
        for _ in 0..weeks {
            last = self.run_next_week()?;
        }
        Ok(last)
    }

    /// Streams the next scheduled week (rolling the ring over first when
    /// a previous week is in it) — the stepwise driver behind
    /// [`run_weeks`](LiveState::run_weeks), public so tests and admin
    /// tooling can pin per-week snapshots between weeks.
    ///
    /// Errors once all scheduled weeks (see
    /// [`set_weeks`](LiveState::set_weeks)) have been ingested.
    pub fn run_next_week(&self) -> Result<IngestStats, IngestError> {
        // Held across the whole week: serializes concurrent drivers and
        // makes "already ran" a stable answer rather than a race.
        let mut cursor = self.cursor.lock().expect("week cursor poisoned");
        let week = cursor.weeks_started;
        if week >= self.weeks_total.load(Ordering::SeqCst) {
            return Err(IngestError::Config("live ingestion already ran".into()));
        }
        if week > 0 {
            self.roll_week(week);
        }
        cursor.weeks_started += 1;
        self.ingest_week(week)
    }

    /// Retires the expired week from the ring: every shard partial and
    /// its diagnostics reset to empty, watermarks retire to 0, and the
    /// ring week advances — the snapshot's memory footprint is unchanged
    /// (same dense tables, fresh values).
    fn roll_week(&self, week: usize) {
        let catalog = self.model.catalog();
        let n_head = catalog.head().len();
        let n_tail = catalog.tail_len();
        let share = self.model.config().subscriber_share;
        // Hold every shard lock for the whole reset: a concurrent
        // `snapshot()` (which also takes all the locks) either sees the
        // old week whole or the new week whole, never a torn ring.
        {
            let mut guards: Vec<_> = self
                .slots
                .iter()
                .map(|slot| slot.lock().expect("shard slot poisoned"))
                .collect();
            for slot in guards.iter_mut() {
                slot.dataset = TrafficDataset::new(self.model.country(), n_head, n_tail, share);
                slot.stats = CollectionStats::default();
            }
            for w in &self.watermarks {
                w.store(0, Ordering::Release);
            }
            self.closed_shards.store(0, Ordering::SeqCst);
            self.week.store(week, Ordering::SeqCst);
        }
        mobilenet_obs::add("serve.week_rolls", 1);
        mobilenet_obs::gauge("serve.week", week as f64);
        self.bump_version();
    }

    /// Streams ring week `week` (seed already rolled over).
    fn ingest_week(&self, week: usize) -> Result<IngestStats, IngestError> {
        let _span = mobilenet_obs::span("live_ingest");
        let seed = self.week_seed(week);
        let capture =
            Capture::build(&self.model, &self.netsim, seed).map_err(IngestError::Config)?;
        let source: SyntheticSource<'_> = capture.source(&self.model, &self.options, seed);
        let shards = self.slots.len();
        let workers = mobilenet_par::current_threads().min(shards.max(1)).max(1);
        // `fetch_max`, not `store`: the resident budget must stay valid
        // when different weeks of one run see different pool widths.
        self.workers.fetch_max(workers, Ordering::Relaxed);
        self.meter.note_cycle();
        let bytes_base = self.bytes_read.load(Ordering::Relaxed);
        let results = mobilenet_par::par_map_collect(shards, |shard| {
            let mut source_stats = CollectionStats::default();
            let streamed = stream_shard_chunked(
                &source,
                shard,
                self.options.chunk_size,
                &self.meter,
                &mut source_stats,
                |batch| {
                    let frontier = batch.start_hours().iter().copied().max();
                    {
                        let mut guard = self.slots[shard].lock().expect("shard slot poisoned");
                        let slot = &mut *guard;
                        aggregate_batch(
                            batch,
                            capture.classifier(),
                            self.options.fold,
                            false,
                            &mut slot.dataset,
                            &mut slot.stats,
                        );
                    }
                    if let Some(h) = frontier {
                        self.watermarks[shard].fetch_max(h as u64 + 1, Ordering::Relaxed);
                    }
                    self.bump_version();
                },
            );
            // Source-side diagnostics fold into the partial at shard
            // close — the exact point the batch engine merges them, so
            // the partial matches the batch partial bit for bit.
            self.slots[shard]
                .lock()
                .expect("shard slot poisoned")
                .stats
                .merge(&source_stats);
            if streamed.is_ok() {
                self.watermarks[shard].store(HOURS_PER_WEEK as u64, Ordering::Release);
                self.closed_shards.fetch_add(1, Ordering::SeqCst);
            }
            self.bytes_read.store(bytes_base + source.bytes_read(), Ordering::Relaxed);
            self.bump_version();
            streamed
        });
        for r in results {
            r?;
        }
        self.bytes_read.store(bytes_base + source.bytes_read(), Ordering::Relaxed);
        self.bump_version();
        Ok(self.ingest_stats())
    }

    /// Bumps the state version and wakes delta subscribers.
    fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::Release);
        self.notifier.notify();
    }

    /// Global observed frontier within the current week, hours
    /// (`0..=168`).
    pub fn watermark_hour(&self) -> usize {
        self.watermarks
            .iter()
            .map(|w| w.load(Ordering::Acquire))
            .min()
            .unwrap_or(0) as usize
    }

    /// Ring week currently being folded (`0`-based).
    pub fn week(&self) -> usize {
        self.week.load(Ordering::SeqCst)
    }

    /// Scheduled weeks of this run.
    pub fn weeks(&self) -> usize {
        self.weeks_total.load(Ordering::SeqCst)
    }

    /// Whether the final scheduled week's streams have all closed.
    pub fn complete(&self) -> bool {
        self.week.load(Ordering::SeqCst) + 1 == self.weeks_total.load(Ordering::SeqCst)
            && self.closed_shards.load(Ordering::SeqCst) == self.slots.len()
    }

    /// Streaming-engine accounting so far (cumulative across weeks).
    pub fn ingest_stats(&self) -> IngestStats {
        self.meter.stats(
            self.options.chunk_size,
            self.workers.load(Ordering::Relaxed),
            self.bytes_read.load(Ordering::Relaxed),
        )
    }

    /// The current state version (bumped on every fold).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// A consistent snapshot of the live aggregate: partials merged in
    /// shard order into a fresh dataset, tail filled from the model —
    /// the batch engine's reduction, run on demand.
    ///
    /// Snapshots are cached per state version, so repeated queries while
    /// ingestion is idle (or finished) cost one merge total.
    pub fn snapshot(&self) -> Arc<LiveSnapshot> {
        let version = self.version();
        if let Some((cached_version, snap)) =
            self.cache.lock().expect("snapshot cache poisoned").as_ref()
        {
            if *cached_version == version {
                return snap.clone();
            }
        }
        let _span = mobilenet_obs::span("live_snapshot");
        let catalog = self.model.catalog();
        let mut dataset = TrafficDataset::new(
            self.model.country(),
            catalog.head().len(),
            catalog.tail_len(),
            self.model.config().subscriber_share,
        );
        let mut stats = CollectionStats::default();
        // Hold every shard lock for the whole merge: the result is a
        // consistent cut — no fold can land in any shard mid-merge, and
        // a `complete` read under the locks guarantees the merged data
        // is final (every fold of a closed shard happens-before the
        // close it reports). Reading the flags after a lock-free
        // sequential merge could claim `complete` over a dataset that
        // missed the last shard's final folds.
        let (version, watermark_hour, week, weeks, complete, ingest) = {
            let guards: Vec<_> = self
                .slots
                .iter()
                .map(|slot| slot.lock().expect("shard slot poisoned"))
                .collect();
            for slot in &guards {
                dataset.merge(&slot.dataset).expect("shard partials share one shape");
                stats.merge(&slot.stats);
            }
            (
                self.version(),
                self.watermark_hour(),
                self.week(),
                self.weeks(),
                self.complete(),
                self.ingest_stats(),
            )
        };
        self.model.fill_tail(&mut dataset);
        let snap = Arc::new(LiveSnapshot {
            dataset,
            stats,
            ingest,
            watermark_hour,
            week,
            weeks,
            complete,
            version,
        });
        mobilenet_obs::add("serve.snapshots", 1);
        mobilenet_obs::gauge("serve.watermark_hour", snap.watermark_hour as f64);
        *self.cache.lock().expect("snapshot cache poisoned") = Some((version, snap.clone()));
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn week_seed_is_identity_at_week_zero_and_distinct_after() {
        assert_eq!(week_seed(42, 0), 42);
        let seeds: Vec<u64> = (0..8).map(|w| week_seed(42, w)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b, "derived week seeds collide: {seeds:?}");
            }
        }
        // Deterministic.
        assert_eq!(week_seed(42, 3), week_seed(42, 3));
        assert_ne!(week_seed(42, 3), week_seed(43, 3));
    }

    #[test]
    fn set_weeks_rejects_zero_and_post_start_changes() {
        let config = mobilenet_core::StudyConfig::small();
        let state = LiveState::from_config(&config, 5).expect("valid config");
        assert!(state.set_weeks(0).is_err());
        assert!(state.set_weeks(2).is_ok());
        assert_eq!(state.weeks(), 2);
    }
}
