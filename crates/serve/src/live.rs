//! Incremental aggregation over an unbounded record stream.
//!
//! [`LiveState`] is the always-on counterpart of
//! [`collect_with_options`](mobilenet_netsim::collect_with_options): it
//! owns the demand model and measurement apparatus, streams every shard
//! of the synthetic week through bounded chunks
//! ([`stream_shard_chunked`]) into per-shard partial datasets, and
//! answers snapshot queries at any point during ingestion.
//!
//! # Bit-identity contract
//!
//! A snapshot taken after ingestion completes is **bit-identical** to the
//! batch path on the same `(config, seed)` — at any thread count and with
//! any fault plan — because the live engine replicates the batch
//! engine's operations exactly:
//!
//! * each shard's records come from the same [`Capture`]/[`SyntheticSource`]
//!   streams, chunked by the same [`ChunkSink`] budget;
//! * every flushed batch folds through the same
//!   [`aggregate_batch`] into a per-shard partial, and exactly one worker
//!   streams a given shard, so the fold order within a shard is the
//!   stream order;
//! * source-side diagnostics merge into the shard partial at shard close,
//!   exactly where the batch engine merges them;
//! * a snapshot merges the partials **in shard order** into a fresh
//!   dataset and fills the tail table from the model — the same
//!   reduction `collect_with_options` performs.
//!
//! # Watermark semantics
//!
//! The synthetic source is *not* time-ordered — sessions sample their
//! start hour — so the watermark is an **observed frontier**, not a
//! completeness guarantee: per shard it is the highest start hour folded
//! so far, jumping to 168 when the shard's stream closes; the global
//! watermark is the minimum over shards. It is monotone, reaches 168
//! exactly when every shard has closed ([`LiveSnapshot::complete`]), and
//! until then snapshots are monotone lower bounds of the final week
//! (per-cell volumes only grow).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mobilenet_core::StudyConfig;
use mobilenet_netsim::{
    aggregate_batch, stream_shard_chunked, Capture, CollectOptions, CollectionStats, IngestError,
    IngestMeter, IngestStats, NetsimConfig, RecordSource, SyntheticSource,
};
use mobilenet_traffic::{DemandModel, ServiceCatalog, TrafficDataset, HOURS_PER_WEEK};

/// One shard's growing partial aggregate.
#[derive(Debug)]
struct ShardSlot {
    dataset: TrafficDataset,
    stats: CollectionStats,
}

/// The shared state of one live ingestion run: per-shard partials,
/// watermarks and accounting, queryable while
/// [`run_ingestion`](LiveState::run_ingestion) streams.
pub struct LiveState {
    model: DemandModel,
    netsim: NetsimConfig,
    options: CollectOptions,
    seed: u64,
    slots: Vec<Mutex<ShardSlot>>,
    /// Per-shard observed frontier: `max start_hour + 1` folded so far,
    /// `HOURS_PER_WEEK` once the shard closes.
    watermarks: Vec<AtomicU64>,
    closed_shards: AtomicUsize,
    /// Bumped on every fold and shard close; snapshot cache key.
    version: AtomicU64,
    meter: IngestMeter,
    workers: AtomicUsize,
    bytes_read: AtomicU64,
    started: AtomicBool,
    cache: Mutex<Option<(u64, Arc<LiveSnapshot>)>>,
}

/// A consistent view of the live aggregate at one moment — on a complete
/// run, bit-identical to the batch
/// [`CollectionOutput`](mobilenet_netsim::CollectionOutput).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct LiveSnapshot {
    /// The merged dataset (tail table filled from the demand model).
    pub dataset: TrafficDataset,
    /// Collection diagnostics folded so far.
    pub stats: CollectionStats,
    /// Streaming-engine accounting so far.
    pub ingest: IngestStats,
    /// Global observed frontier, hours (`0..=168`); see the module docs
    /// for the exact semantics.
    pub watermark_hour: usize,
    /// Whether every shard's stream has closed — from this point on the
    /// snapshot no longer changes and equals the batch output.
    pub complete: bool,
    /// The state version the snapshot was built at (monotone).
    pub version: u64,
}

impl LiveState {
    /// Builds the live state for a demand model: one empty partial per
    /// shard, nothing streamed yet.
    pub fn new(
        model: DemandModel,
        netsim: NetsimConfig,
        options: CollectOptions,
        seed: u64,
    ) -> Result<Arc<LiveState>, String> {
        netsim.validate()?;
        options.validate()?;
        let catalog = model.catalog();
        let n_head = catalog.head().len();
        let n_tail = catalog.tail_len();
        let share = model.config().subscriber_share;
        let shards = n_head;
        let slots = (0..shards)
            .map(|_| {
                Mutex::new(ShardSlot {
                    dataset: TrafficDataset::new(model.country(), n_head, n_tail, share),
                    stats: CollectionStats::default(),
                })
            })
            .collect();
        let watermarks = (0..shards).map(|_| AtomicU64::new(0)).collect();
        Ok(Arc::new(LiveState {
            model,
            netsim,
            options,
            seed,
            slots,
            watermarks,
            closed_shards: AtomicUsize::new(0),
            version: AtomicU64::new(0),
            meter: IngestMeter::new(),
            workers: AtomicUsize::new(0),
            bytes_read: AtomicU64::new(0),
            started: AtomicBool::new(false),
            cache: Mutex::new(None),
        }))
    }

    /// [`LiveState::new`] from a [`StudyConfig`] — the same model and
    /// options a batch [`Pipeline`](mobilenet_core::Pipeline) run of that
    /// config would use, so snapshots pin against it.
    pub fn from_config(config: &StudyConfig, seed: u64) -> Result<Arc<LiveState>, String> {
        LiveState::new(
            config.demand_model(seed),
            config.netsim.clone(),
            config.collect_options(),
            seed,
        )
    }

    /// The service catalog of the demand model.
    pub fn catalog(&self) -> &ServiceCatalog {
        self.model.catalog()
    }

    /// Head-service names in dataset order.
    pub fn service_names(&self) -> Vec<&'static str> {
        self.catalog().head().iter().map(|s| s.name).collect()
    }

    /// Streams the whole week through the incremental engine, fanning the
    /// shards out over the ambient `mobilenet-par` pool. Blocks until
    /// every shard closes (run it on a dedicated thread to keep serving);
    /// snapshots remain answerable throughout.
    ///
    /// Returns the final accounting; a second call is rejected (the
    /// stream was already consumed).
    pub fn run_ingestion(&self) -> Result<IngestStats, IngestError> {
        if self.started.swap(true, Ordering::SeqCst) {
            return Err(IngestError::Config("live ingestion already ran".into()));
        }
        let _span = mobilenet_obs::span("live_ingest");
        let capture =
            Capture::build(&self.model, &self.netsim, self.seed).map_err(IngestError::Config)?;
        let source: SyntheticSource<'_> = capture.source(&self.model, &self.options, self.seed);
        let shards = self.slots.len();
        let workers = mobilenet_par::current_threads().min(shards.max(1)).max(1);
        self.workers.store(workers, Ordering::Relaxed);
        let results = mobilenet_par::par_map_collect(shards, |shard| {
            let mut source_stats = CollectionStats::default();
            let streamed = stream_shard_chunked(
                &source,
                shard,
                self.options.chunk_size,
                &self.meter,
                &mut source_stats,
                |batch| {
                    let frontier = batch.start_hours().iter().copied().max();
                    {
                        let mut guard = self.slots[shard].lock().expect("shard slot poisoned");
                        let slot = &mut *guard;
                        aggregate_batch(
                            batch,
                            capture.classifier(),
                            self.options.fold,
                            false,
                            &mut slot.dataset,
                            &mut slot.stats,
                        );
                    }
                    if let Some(h) = frontier {
                        self.watermarks[shard].fetch_max(h as u64 + 1, Ordering::Relaxed);
                    }
                    self.version.fetch_add(1, Ordering::Release);
                },
            );
            // Source-side diagnostics fold into the partial at shard
            // close — the exact point the batch engine merges them, so
            // the partial matches the batch partial bit for bit.
            self.slots[shard]
                .lock()
                .expect("shard slot poisoned")
                .stats
                .merge(&source_stats);
            if streamed.is_ok() {
                self.watermarks[shard].store(HOURS_PER_WEEK as u64, Ordering::Release);
                self.closed_shards.fetch_add(1, Ordering::SeqCst);
            }
            self.bytes_read.store(source.bytes_read(), Ordering::Relaxed);
            self.version.fetch_add(1, Ordering::Release);
            streamed
        });
        for r in results {
            r?;
        }
        self.bytes_read.store(source.bytes_read(), Ordering::Relaxed);
        self.version.fetch_add(1, Ordering::Release);
        Ok(self.ingest_stats())
    }

    /// Global observed frontier, hours (`0..=168`).
    pub fn watermark_hour(&self) -> usize {
        self.watermarks
            .iter()
            .map(|w| w.load(Ordering::Acquire))
            .min()
            .unwrap_or(0) as usize
    }

    /// Whether every shard's stream has closed.
    pub fn complete(&self) -> bool {
        self.closed_shards.load(Ordering::SeqCst) == self.slots.len()
    }

    /// Streaming-engine accounting so far.
    pub fn ingest_stats(&self) -> IngestStats {
        self.meter.stats(
            self.options.chunk_size,
            self.workers.load(Ordering::Relaxed),
            self.bytes_read.load(Ordering::Relaxed),
        )
    }

    /// The current state version (bumped on every fold).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// A consistent snapshot of the live aggregate: partials merged in
    /// shard order into a fresh dataset, tail filled from the model —
    /// the batch engine's reduction, run on demand.
    ///
    /// Snapshots are cached per state version, so repeated queries while
    /// ingestion is idle (or finished) cost one merge total.
    pub fn snapshot(&self) -> Arc<LiveSnapshot> {
        let version = self.version();
        if let Some((cached_version, snap)) =
            self.cache.lock().expect("snapshot cache poisoned").as_ref()
        {
            if *cached_version == version {
                return snap.clone();
            }
        }
        let _span = mobilenet_obs::span("live_snapshot");
        let catalog = self.model.catalog();
        let mut dataset = TrafficDataset::new(
            self.model.country(),
            catalog.head().len(),
            catalog.tail_len(),
            self.model.config().subscriber_share,
        );
        let mut stats = CollectionStats::default();
        for slot in &self.slots {
            let slot = slot.lock().expect("shard slot poisoned");
            dataset.merge(&slot.dataset).expect("shard partials share one shape");
            stats.merge(&slot.stats);
        }
        self.model.fill_tail(&mut dataset);
        let snap = Arc::new(LiveSnapshot {
            dataset,
            stats,
            ingest: self.ingest_stats(),
            watermark_hour: self.watermark_hour(),
            complete: self.complete(),
            version,
        });
        mobilenet_obs::add("serve.snapshots", 1);
        mobilenet_obs::gauge("serve.watermark_hour", snap.watermark_hour as f64);
        *self.cache.lock().expect("snapshot cache poisoned") = Some((version, snap.clone()));
        snap
    }
}
